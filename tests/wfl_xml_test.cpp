// Dedicated interchange tests: process / case / dataset XML under awkward
// content — special characters, empty collections, guard expressions, and
// GP-generated graphs.
#include <gtest/gtest.h>

#include "planner/convert.hpp"
#include "planner/operators.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/validate.hpp"
#include "wfl/xml_io.hpp"

namespace ig::wfl {
namespace {

TEST(ProcessXml, Figure10FullFidelity) {
  const ProcessDescription original = virolab::make_fig10_process();
  const ProcessDescription restored =
      process_from_xml_string(process_to_xml_string(original));
  ASSERT_EQ(restored.activity_count(), original.activity_count());
  ASSERT_EQ(restored.transition_count(), original.transition_count());
  for (const auto& activity : original.activities()) {
    const Activity* copy = restored.find_activity(activity.id);
    ASSERT_NE(copy, nullptr) << activity.id;
    EXPECT_EQ(copy->name, activity.name);
    EXPECT_EQ(copy->kind, activity.kind);
    EXPECT_EQ(copy->service_name, activity.service_name);
    EXPECT_EQ(copy->input_data, activity.input_data);
    EXPECT_EQ(copy->output_data, activity.output_data);
    EXPECT_EQ(copy->constraint, activity.constraint);
  }
  for (const auto& transition : original.transitions()) {
    const Transition* copy = restored.find_transition(transition.id);
    ASSERT_NE(copy, nullptr) << transition.id;
    EXPECT_EQ(copy->source, transition.source);
    EXPECT_EQ(copy->destination, transition.destination);
    EXPECT_TRUE(copy->guard == transition.guard) << transition.id;
  }
}

TEST(ProcessXml, GuardWithSpecialCharactersSurvives) {
  ProcessDescription process("special");
  process.add_flow_control("B", ActivityKind::Begin);
  process.add_flow_control("C", ActivityKind::Choice);
  process.add_end_user("X", "X", "svc");
  process.add_end_user("Y", "Y", "svc");
  process.add_flow_control("M", ActivityKind::Merge);
  process.add_flow_control("E", ActivityKind::End);
  process.add_transition("B", "C");
  const Condition guard = Condition::parse("A.Name = \"x<y&z>'w'\" and A.Value >= 2");
  process.add_transition("C", "X", guard);
  process.add_transition("C", "Y", Condition::negation(guard));
  process.add_transition("X", "M");
  process.add_transition("Y", "M");
  process.add_transition("M", "E");

  const ProcessDescription restored = process_from_xml_string(process_to_xml_string(process));
  const auto outgoing = restored.outgoing("C");
  ASSERT_EQ(outgoing.size(), 2u);
  EXPECT_TRUE(outgoing[0]->guard == guard);
}

TEST(ProcessXml, EmptyProcessRoundTrips) {
  ProcessDescription empty("void");
  const ProcessDescription restored = process_from_xml_string(process_to_xml_string(empty));
  EXPECT_EQ(restored.activity_count(), 0u);
  EXPECT_EQ(restored.name(), "void");
}

TEST(CaseXml, EmptyCaseRoundTrips) {
  CaseDescription empty("bare");
  const CaseDescription restored = case_from_xml_string(case_to_xml_string(empty));
  EXPECT_EQ(restored.name(), "bare");
  EXPECT_TRUE(restored.initial_data().empty());
  EXPECT_TRUE(restored.goals().empty());
  EXPECT_TRUE(restored.constraints().empty());
}

TEST(CaseXml, DataPropertiesWithAllValueTypes) {
  CaseDescription original("typed");
  DataSpec item("mixed");
  item.with("Text", meta::Value("a & b < c"))
      .with("Number", meta::Value(-2.5))
      .with("Flag", meta::Value(true))
      .with("Tags", meta::Value::list_of({"x", "y"}));
  original.initial_data().put(item);
  const CaseDescription restored = case_from_xml_string(case_to_xml_string(original));
  const DataSpec* copy = restored.initial_data().find("mixed");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->get("Text").as_string(), "a & b < c");
  EXPECT_DOUBLE_EQ(copy->get("Number").as_number(), -2.5);
  EXPECT_TRUE(copy->get("Flag").as_boolean());
  EXPECT_EQ(copy->get("Tags").as_string_list(), (std::vector<std::string>{"x", "y"}));
}

TEST(CaseXml, MultipleGoalsAndConstraints) {
  CaseDescription original("multi");
  for (int i = 0; i < 3; ++i) {
    GoalSpec goal;
    goal.description = "goal " + std::to_string(i);
    goal.condition = Condition::parse("G.Value > " + std::to_string(i));
    original.add_goal(std::move(goal));
    original.add_constraint("C" + std::to_string(i),
                            Condition::parse("X.Value < " + std::to_string(i + 10)));
  }
  const CaseDescription restored = case_from_xml_string(case_to_xml_string(original));
  ASSERT_EQ(restored.goals().size(), 3u);
  ASSERT_EQ(restored.constraints().size(), 3u);
  EXPECT_EQ(restored.goals()[2].description, "goal 2");
  ASSERT_NE(restored.find_constraint("C1"), nullptr);
  EXPECT_EQ(restored.find_constraint("C1")->to_string(), "X.Value < 11");
}

TEST(DatasetXml, EmptyAndSingleton) {
  EXPECT_TRUE(dataset_from_xml_string(dataset_to_xml_string(DataSet{})).empty());
  DataSet one;
  one.put(DataSpec("only").with_classification("Thing"));
  const DataSet restored = dataset_from_xml_string(dataset_to_xml_string(one));
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored.find("only")->classification(), "Thing");
}

TEST(ProcessXml, GpGeneratedGraphsSurviveArchival) {
  // The planning service archives every plan it produces; any GP output
  // must survive the store/load cycle with its guards intact.
  util::Rng rng(2026);
  const auto catalogue = virolab::make_catalogue();
  for (int i = 0; i < 25; ++i) {
    const planner::PlanNode tree = planner::random_tree(rng, catalogue, 30);
    const ProcessDescription process = planner::to_process(tree, "archived");
    const ProcessDescription restored =
        process_from_xml_string(process_to_xml_string(process));
    EXPECT_TRUE(is_valid(restored));
    EXPECT_EQ(planner::to_flow_expr(planner::from_process(restored)).to_text(),
              planner::to_flow_expr(tree).to_text());
  }
}

}  // namespace
}  // namespace ig::wfl
