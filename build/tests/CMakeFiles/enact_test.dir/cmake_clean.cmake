file(REMOVE_RECURSE
  "CMakeFiles/enact_test.dir/enact_test.cpp.o"
  "CMakeFiles/enact_test.dir/enact_test.cpp.o.d"
  "enact_test"
  "enact_test.pdb"
  "enact_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
