# Empty compiler generated dependencies file for ig_util.
# This may be replaced when dependencies are built.
