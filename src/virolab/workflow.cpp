#include "virolab/workflow.hpp"

#include "util/strings.hpp"
#include "virolab/catalogue.hpp"

namespace ig::virolab {

using planner::PlanNode;
using wfl::ActivityKind;
using wfl::Condition;
using wfl::FlowExpr;

Condition loop_condition(double target_resolution) {
  return Condition::parse("R.Classification = \"Resolution File\" and R.Value > " +
                          util::format_number(target_resolution));
}

wfl::ProcessDescription make_fig10_process(double target_resolution) {
  wfl::ProcessDescription process("PD-3DSD");

  auto add = [&process](const char* id, const char* name, ActivityKind kind,
                        const char* service, std::vector<std::string> inputs,
                        std::vector<std::string> outputs) -> wfl::Activity& {
    wfl::Activity activity;
    activity.id = id;
    activity.name = name;
    activity.kind = kind;
    activity.service_name = service;
    activity.input_data = std::move(inputs);
    activity.output_data = std::move(outputs);
    return process.add_activity(std::move(activity));
  };

  // Figure 13's activity table (A1..A13 with service bindings and data sets).
  add("A1", "BEGIN", ActivityKind::Begin, "", {}, {});
  add("A2", "POD", ActivityKind::EndUser, "POD", {"D1", "D7"}, {"D8"});
  add("A3", "P3DR1", ActivityKind::EndUser, "P3DR", {"D2", "D7", "D8"}, {"D9"});
  add("A4", "MERGE", ActivityKind::Merge, "", {}, {});
  add("A5", "POR", ActivityKind::EndUser, "POR", {"D5", "D7", "D8", "D9"}, {"D8"});
  add("A6", "FORK", ActivityKind::Fork, "", {}, {});
  add("A7", "P3DR2", ActivityKind::EndUser, "P3DR", {"D3", "D7", "D8"}, {"D10"});
  add("A8", "P3DR3", ActivityKind::EndUser, "P3DR", {"D4", "D7", "D8"}, {"D11"});
  add("A9", "P3DR4", ActivityKind::EndUser, "P3DR", {"D2", "D7", "D8"}, {"D9"});
  add("A10", "JOIN", ActivityKind::Join, "", {}, {});
  add("A11", "PSF", ActivityKind::EndUser, "PSF", {"D10", "D11"}, {"D12"});
  auto& choice = add("A12", "CHOICE", ActivityKind::Choice, "", {}, {});
  choice.constraint = "Cons1";
  add("A13", "END", ActivityKind::End, "", {}, {});

  const Condition continue_condition = loop_condition(target_resolution);

  // Figure 13's transition table (TR1..TR15).
  process.add_transition("A1", "A2", Condition(), "TR1");
  process.add_transition("A2", "A3", Condition(), "TR2");
  process.add_transition("A3", "A4", Condition(), "TR3");
  process.add_transition("A4", "A5", Condition(), "TR4");
  process.add_transition("A5", "A6", Condition(), "TR5");
  process.add_transition("A6", "A7", Condition(), "TR6");
  process.add_transition("A6", "A8", Condition(), "TR7");
  process.add_transition("A6", "A9", Condition(), "TR8");
  process.add_transition("A7", "A10", Condition(), "TR9");
  process.add_transition("A8", "A10", Condition(), "TR10");
  process.add_transition("A9", "A10", Condition(), "TR11");
  process.add_transition("A10", "A11", Condition(), "TR12");
  process.add_transition("A11", "A12", Condition(), "TR13");
  process.add_transition("A12", "A4", continue_condition, "TR14");
  process.add_transition("A12", "A13", Condition::negation(continue_condition), "TR15");
  return process;
}

FlowExpr make_flow_expr(double target_resolution) {
  std::vector<FlowExpr> fork_branches;
  fork_branches.push_back(FlowExpr::activity("P3DR2", "P3DR"));
  fork_branches.push_back(FlowExpr::activity("P3DR3", "P3DR"));
  fork_branches.push_back(FlowExpr::activity("P3DR4", "P3DR"));

  std::vector<FlowExpr> body;
  body.push_back(FlowExpr::activity("POR", "POR"));
  body.push_back(FlowExpr::concurrent(std::move(fork_branches)));
  body.push_back(FlowExpr::activity("PSF", "PSF"));

  std::vector<FlowExpr> top;
  top.push_back(FlowExpr::activity("POD", "POD"));
  top.push_back(FlowExpr::activity("P3DR1", "P3DR"));
  top.push_back(FlowExpr::iterative(loop_condition(target_resolution),
                                    FlowExpr::sequence(std::move(body))));
  return FlowExpr::sequence(std::move(top));
}

PlanNode make_fig11_plan_tree(double target_resolution) {
  std::vector<PlanNode> concurrent;
  concurrent.push_back(PlanNode::terminal("P3DR"));
  concurrent.push_back(PlanNode::terminal("P3DR"));
  concurrent.push_back(PlanNode::terminal("P3DR"));

  std::vector<PlanNode> body;
  body.push_back(PlanNode::terminal("POR"));
  body.push_back(PlanNode::concurrent(std::move(concurrent)));
  body.push_back(PlanNode::terminal("PSF"));

  std::vector<PlanNode> top;
  top.push_back(PlanNode::terminal("POD"));
  top.push_back(PlanNode::terminal("P3DR"));
  top.push_back(PlanNode::iterative(std::move(body), loop_condition(target_resolution)));
  return PlanNode::sequential(std::move(top));
}

}  // namespace ig::virolab
