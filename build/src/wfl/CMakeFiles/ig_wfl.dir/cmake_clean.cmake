file(REMOVE_RECURSE
  "CMakeFiles/ig_wfl.dir/case_description.cpp.o"
  "CMakeFiles/ig_wfl.dir/case_description.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/condition.cpp.o"
  "CMakeFiles/ig_wfl.dir/condition.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/data.cpp.o"
  "CMakeFiles/ig_wfl.dir/data.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/enact.cpp.o"
  "CMakeFiles/ig_wfl.dir/enact.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/flowexpr.cpp.o"
  "CMakeFiles/ig_wfl.dir/flowexpr.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/process.cpp.o"
  "CMakeFiles/ig_wfl.dir/process.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/service.cpp.o"
  "CMakeFiles/ig_wfl.dir/service.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/structure.cpp.o"
  "CMakeFiles/ig_wfl.dir/structure.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/validate.cpp.o"
  "CMakeFiles/ig_wfl.dir/validate.cpp.o.d"
  "CMakeFiles/ig_wfl.dir/xml_io.cpp.o"
  "CMakeFiles/ig_wfl.dir/xml_io.cpp.o.d"
  "libig_wfl.a"
  "libig_wfl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_wfl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
