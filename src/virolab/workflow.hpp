// The Figure 10 process description and Figure 11 plan tree.
//
// BEGIN -> POD -> P3DR1 -> MERGE -> POR -> FORK -> {P3DR2, P3DR3, P3DR4}
//   -> JOIN -> PSF -> CHOICE -> (back to MERGE | END)
//
// Activity ids A1..A13 and transition ids TR1..TR15 follow Figure 13's
// instance tables; the CHOICE activity carries constraint Cons1.
#pragma once

#include "planner/plan_tree.hpp"
#include "wfl/flowexpr.hpp"
#include "wfl/process.hpp"

namespace ig::virolab {

/// The continue condition of the refinement loop (Cons1's then-branch).
wfl::Condition loop_condition(double target_resolution = 8.0);

/// Figure 10's graph, verbatim: 7 end-user + 6 flow-control activities,
/// 15 transitions, input/output data sets from Figure 13.
wfl::ProcessDescription make_fig10_process(double target_resolution = 8.0);

/// The same workflow as a structured flow expression (parseable/printable
/// via the Section 2 grammar).
wfl::FlowExpr make_flow_expr(double target_resolution = 8.0);

/// Figure 11's plan tree: Sequential(POD, P3DR, Iterative(POR,
/// Concurrent(P3DR, P3DR, P3DR), PSF)).
planner::PlanNode make_fig11_plan_tree(double target_resolution = 8.0);

}  // namespace ig::virolab
