
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meta/ontology.cpp" "src/meta/CMakeFiles/ig_meta.dir/ontology.cpp.o" "gcc" "src/meta/CMakeFiles/ig_meta.dir/ontology.cpp.o.d"
  "/root/repo/src/meta/standard.cpp" "src/meta/CMakeFiles/ig_meta.dir/standard.cpp.o" "gcc" "src/meta/CMakeFiles/ig_meta.dir/standard.cpp.o.d"
  "/root/repo/src/meta/value.cpp" "src/meta/CMakeFiles/ig_meta.dir/value.cpp.o" "gcc" "src/meta/CMakeFiles/ig_meta.dir/value.cpp.o.d"
  "/root/repo/src/meta/xml_io.cpp" "src/meta/CMakeFiles/ig_meta.dir/xml_io.cpp.o" "gcc" "src/meta/CMakeFiles/ig_meta.dir/xml_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
