# Empty dependencies file for bench_replanning_robustness.
# This may be replaced when dependencies are built.
