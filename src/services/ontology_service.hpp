// Ontology service: maintains and distributes ontologies.
//
// "Ontology services maintain and distribute ontology shells (i.e.,
// ontologies with classes and slots but without instances) as well as
// ontologies populated with instances, global ontologies, and user-specific
// ontologies." Ontologies travel as XML documents (meta/xml_io).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "meta/ontology.hpp"

namespace ig::svc {

class OntologyService : public agent::Agent {
 public:
  explicit OntologyService(std::string name = "os") : Agent(std::move(name)) {}

  /// Preloads an ontology (e.g. the standard grid ontology at bootstrap).
  void store(meta::Ontology ontology);

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  const meta::Ontology* find(const std::string& name) const;
  std::vector<std::string> ontology_names() const;

 private:
  std::map<std::string, meta::Ontology> ontologies_;
};

}  // namespace ig::svc
