// Persistent storage service.
//
// "Persistent storage services provide access to the data needed for the
// execution of user tasks." It also backs the "system knowledge base" where
// process descriptions are archived (Section 3). A keyed document store with
// optional namespaces is sufficient for both roles.
//
// The documents live in a `store::StorageEngine`: by default a private
// in-memory instance (exactly the old std::map behavior), or a shared
// durable engine handed in through `EnvironmentOptions::storage_engine`, in
// which case every put is WAL-journaled and survives a process restart.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "store/storage_engine.hpp"

namespace ig::svc {

class PersistentStorageService : public agent::Agent {
 public:
  /// `engine == nullptr` gives the service a private in-memory store; a
  /// non-null engine (not owned) makes the documents durable/shared.
  explicit PersistentStorageService(std::string name = "pss",
                                    store::StorageEngine* engine = nullptr);

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  // Direct access for tests and harnesses.
  void put(const std::string& key, std::string value);
  /// A copy of the document, not a pointer into internal state: the old
  /// `const std::string*` return was invalidated by any interleaved put of
  /// the same key (and by map rehash/erase under a shared engine).
  std::optional<std::string> get(const std::string& key) const;
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;
  std::size_t size() const noexcept { return store().size(); }

  store::StorageEngine& store() noexcept { return *store_; }
  const store::StorageEngine& store() const noexcept { return *store_; }

 private:
  std::unique_ptr<store::StorageEngine> owned_;  ///< null when sharing
  store::StorageEngine* store_ = nullptr;
};

}  // namespace ig::svc
