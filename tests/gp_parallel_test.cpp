// The parallel planning engine's core contract: run_gp is a pure function
// of (problem, config-minus-threads). threads only changes wall-clock time,
// never the result, because every individual draws from its own RNG stream
// derived from (seed, generation, index).
#include <gtest/gtest.h>

#include "planner/gp.hpp"
#include "virolab/catalogue.hpp"

namespace ig::planner {
namespace {

PlanningProblem virolab_problem() {
  return PlanningProblem::from_case(virolab::make_case_description(),
                                    virolab::make_catalogue());
}

GpConfig small_config(std::uint64_t seed) {
  GpConfig config;  // Table 1 defaults otherwise
  config.population_size = 60;
  config.generations = 10;
  config.seed = seed;
  return config;
}

/// Bitwise comparison of everything run_gp promises to keep thread-count
/// invariant: best plan, best fitness, full history, evaluation count.
/// (memo_hits is explicitly excluded — it is scheduling-dependent.)
void expect_identical(const GpResult& a, const GpResult& b) {
  EXPECT_EQ(a.best_plan, b.best_plan);
  EXPECT_EQ(a.best_fitness.overall, b.best_fitness.overall);
  EXPECT_EQ(a.best_fitness.validity, b.best_fitness.validity);
  EXPECT_EQ(a.best_fitness.goal, b.best_fitness.goal);
  EXPECT_EQ(a.best_fitness.representation, b.best_fitness.representation);
  EXPECT_EQ(a.best_fitness.size, b.best_fitness.size);
  EXPECT_EQ(a.evaluations, b.evaluations);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].generation, b.history[i].generation);
    EXPECT_EQ(a.history[i].best_fitness, b.history[i].best_fitness);
    EXPECT_EQ(a.history[i].mean_fitness, b.history[i].mean_fitness);
    EXPECT_EQ(a.history[i].best_validity, b.history[i].best_validity);
    EXPECT_EQ(a.history[i].best_goal, b.history[i].best_goal);
    EXPECT_EQ(a.history[i].best_size, b.history[i].best_size);
  }
}

TEST(GpParallel, FourThreadsMatchSerialAcrossSeeds) {
  const PlanningProblem problem = virolab_problem();
  for (const std::uint64_t seed : {11ULL, 29ULL, 47ULL, 101ULL}) {
    GpConfig serial = small_config(seed);
    serial.threads = 1;
    GpConfig parallel = small_config(seed);
    parallel.threads = 4;
    expect_identical(run_gp(problem, serial), run_gp(problem, parallel));
  }
}

TEST(GpParallel, OddThreadCountsAndAutoMatchSerial) {
  const PlanningProblem problem = virolab_problem();
  GpConfig serial = small_config(5);
  serial.threads = 1;
  const GpResult reference = run_gp(problem, serial);
  for (const std::size_t threads : {0ULL, 2ULL, 3ULL, 7ULL}) {
    GpConfig config = small_config(5);
    config.threads = threads;
    expect_identical(reference, run_gp(problem, config));
  }
}

TEST(GpParallel, MatchesSerialUnderConfigVariations) {
  const PlanningProblem problem = virolab_problem();
  GpConfig variants[3] = {small_config(13), small_config(17), small_config(19)};
  variants[0].selection = SelectionScheme::Roulette;
  variants[1].elitism = 0;
  variants[2].init_style = InitStyle::Ramped;
  variants[2].evaluation.memoize = false;
  for (GpConfig& config : variants) {
    config.threads = 1;
    const GpResult serial = run_gp(problem, config);
    config.threads = 4;
    expect_identical(serial, run_gp(problem, config));
  }
}

TEST(GpParallel, MemoSkipsElitesAndClones) {
  const PlanningProblem problem = virolab_problem();
  GpConfig config = small_config(23);
  config.threads = 1;
  const GpResult result = run_gp(problem, config);
  // Elitism re-injects the best plan every generation and tournament
  // selection clones strong individuals, so a memoized run must report hits.
  EXPECT_GT(result.memo_hits, 0u);
  EXPECT_EQ(result.evaluations, config.population_size * (config.generations + 1));

  config.evaluation.memoize = false;
  const GpResult unmemoized = run_gp(problem, config);
  EXPECT_EQ(unmemoized.memo_hits, 0u);
  expect_identical(result, unmemoized);  // memo never changes results
}

TEST(GpParallel, ReportsThreadsUsed) {
  const PlanningProblem problem = virolab_problem();
  GpConfig config = small_config(3);
  config.generations = 2;
  config.threads = 3;
  EXPECT_EQ(run_gp(problem, config).threads_used, 3u);
  config.threads = 0;
  EXPECT_GE(run_gp(problem, config).threads_used, 1u);
}

}  // namespace
}  // namespace ig::planner
