#include "services/monitoring.hpp"

#include "services/protocol.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

const char* to_string(Liveness liveness) noexcept {
  switch (liveness) {
    case Liveness::Unknown: return "unknown";
    case Liveness::Alive: return "alive";
    case Liveness::Suspect: return "suspect";
    case Liveness::Dead: return "dead";
  }
  return "unknown";
}

void MonitoringService::on_start() {
  register_with_information_service(*this, platform(), "monitoring");
  if (sample_period_ > 0) sample();
}

void MonitoringService::sample() {
  const grid::SimTime elapsed = now() > 0 ? now() : 1.0;
  for (const auto& node : grid_->nodes()) {
    auto& series = samples_[node->id()];
    series.push_back(node->busy_time() / elapsed);
    if (max_samples_ > 0 && series.size() > max_samples_)
      series.erase(series.begin());
  }
  // A daemon event: sampling runs for as long as real work keeps the
  // calendar alive, and never keeps it alive by itself.
  schedule_daemon(sample_period_, [this] { sample(); });
}

void MonitoringService::set_max_samples(std::size_t limit) {
  max_samples_ = limit;
  if (max_samples_ == 0) return;
  for (auto& [node_id, series] : samples_) {
    if (series.size() > max_samples_)
      series.erase(series.begin(),
                   series.begin() + static_cast<std::ptrdiff_t>(series.size() - max_samples_));
  }
}

Liveness MonitoringService::classify(const Beat& beat) {
  const double missed = (now() - beat.last_seen) / std::max(heartbeat_.period, 1e-9);
  if (missed >= heartbeat_.dead_missed) return Liveness::Dead;
  if (missed >= heartbeat_.suspect_missed) return Liveness::Suspect;
  return Liveness::Alive;
}

void MonitoringService::record_heartbeat(const std::string& container_id) {
  if (container_id.empty()) return;
  heartbeats_received_.fetch_add(1, std::memory_order_relaxed);
  auto it = beats_.find(container_id);
  if (it == beats_.end()) {
    beats_[container_id].last_seen = now();
    return;
  }
  // A beat after a Dead-length silence is a recovery: the breaker closes.
  if (classify(it->second) == Liveness::Dead)
    containers_recovered_.fetch_add(1, std::memory_order_relaxed);
  it->second.last_seen = now();
}

Liveness MonitoringService::liveness_of(const std::string& container_id) {
  auto it = beats_.find(container_id);
  if (it == beats_.end()) return Liveness::Unknown;
  const Liveness liveness = classify(it->second);
  if (liveness == Liveness::Dead &&
      now() - it->second.last_probe >= heartbeat_.probe_interval) {
    // Half-open probe: give the quarantined container a bounded chance to
    // prove it recovered. Its reply (or a resumed heartbeat) readmits it.
    it->second.last_probe = now();
    AclMessage probe;
    probe.performative = Performative::QueryIf;
    probe.receiver = container_id;
    probe.protocol = protocols::kQueryExecutable;
    probe.conversation_id = name() + "/probe/" + std::to_string(next_probe_++);
    probe.params["service"] = "";
    send(std::move(probe));
  }
  return liveness;
}

std::vector<std::string> MonitoringService::dead_containers() {
  std::vector<std::string> dead;
  for (const auto& [container_id, beat] : beats_) {
    if (classify(beat) == Liveness::Dead) dead.push_back(container_id);
  }
  return dead;
}

void MonitoringService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kHeartbeat) {
    return record_heartbeat(message.param("container", message.sender));
  }
  if (message.protocol == protocols::kQueryExecutable) {
    // Reply to one of our half-open probes: the container is answering
    // messages again, which counts as a sign of life.
    if (message.performative == Performative::Inform)
      record_heartbeat(message.param("container", message.sender));
    return;
  }
  if (message.protocol != protocols::kQueryStatus) {
    if (!should_bounce_unknown(message)) return;
    send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
    return;
  }
  AclMessage reply = message.make_reply(Performative::Inform);
  if (message.has_param("node")) {
    const std::string node_id = message.param("node");
    const grid::GridNode* node = grid_->find_node(node_id);
    reply.params["node"] = node_id;
    if (node == nullptr) {
      reply.performative = Performative::Failure;
      reply.params["error"] = "unknown node";
    } else {
      reply.params["state"] = node->is_up() ? "up" : "down";
      reply.params["next-free"] = util::format_number(node->next_free(), 4);
      reply.params["busy-time"] = util::format_number(node->busy_time(), 4);
      reply.params["completed-tasks"] = std::to_string(node->completed_tasks());
    }
  } else if (message.has_param("container")) {
    const std::string container_id = message.param("container");
    const grid::ApplicationContainer* container = grid_->find_container(container_id);
    reply.params["container"] = container_id;
    if (container == nullptr) {
      reply.performative = Performative::Failure;
      reply.params["error"] = "unknown container";
    } else {
      const grid::GridNode* node = grid_->find_node(container->node_id());
      const bool usable = container->available() && node != nullptr && node->is_up();
      reply.params["available"] = usable ? "true" : "false";
      reply.params["dispatches"] = std::to_string(container->dispatch_count());
      reply.params["failures"] = std::to_string(container->failure_count());
      reply.params["liveness"] = to_string(liveness_of(container_id));
    }
  } else {
    reply.params["nodes"] = std::to_string(grid_->nodes().size());
    reply.params["containers"] = std::to_string(grid_->containers().size());
    reply.params["heartbeats"] = std::to_string(heartbeats_received());
    reply.params["dead-containers"] = std::to_string(dead_containers().size());
  }
  send(std::move(reply));
}

}  // namespace ig::svc
