#include "grid/failure.hpp"

#include "grid/grid.hpp"

namespace ig::grid {

void FailureInjector::schedule_container_outage(Simulation& sim, Grid& grid,
                                                const std::string& container_id, SimTime at,
                                                SimTime duration) {
  sim.schedule_at(at, [&grid, container_id] { grid.set_container_available(container_id, false); });
  if (duration > 0) {
    sim.schedule_at(at + duration,
                    [&grid, container_id] { grid.set_container_available(container_id, true); });
  }
}

void FailureInjector::schedule_node_outage(Simulation& sim, Grid& grid,
                                           const std::string& node_id, SimTime at,
                                           SimTime duration) {
  sim.schedule_at(at, [&grid, node_id] { grid.set_node_state(node_id, NodeState::Down); });
  if (duration > 0) {
    sim.schedule_at(at + duration,
                    [&grid, node_id] { grid.set_node_state(node_id, NodeState::Up); });
  }
}

}  // namespace ig::grid
