#include "grid/node.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace ig::grid {

SimTime GridNode::enqueue_work(SimTime now, double work) {
  const SimTime start = std::max(now, next_free_);
  const SimTime duration = execution_time(work);
  next_free_ = start + duration;
  busy_time_ += duration;
  ++completed_tasks_;
  return next_free_;
}

std::string GridNode::to_display_string() const {
  std::string out = id_ + " '" + name_ + "' @" + domain_;
  out += " [" + hardware_.to_display_string() + "]";
  out += " nodes=" + std::to_string(node_count_);
  out += " rel=" + util::format_number(reliability_);
  out += is_up() ? " UP" : " DOWN";
  return out;
}

}  // namespace ig::grid
