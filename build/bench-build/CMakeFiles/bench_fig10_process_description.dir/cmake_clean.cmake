file(REMOVE_RECURSE
  "../bench/bench_fig10_process_description"
  "../bench/bench_fig10_process_description.pdb"
  "CMakeFiles/bench_fig10_process_description.dir/bench_fig10_process_description.cpp.o"
  "CMakeFiles/bench_fig10_process_description.dir/bench_fig10_process_description.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_process_description.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
