// Malformed-message fault injection across the ACL protocol layer.
//
// Every service must degrade gracefully when a peer sends garbage: reply
// NotUnderstood/Failure with a "reason" param, or drop the payload — never
// throw out of the handler. The fuzz vectors cover the classic parse traps:
// empty strings, non-numeric text, overflow, negatives where unsigned is
// expected, trailing junk, and missing keys.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <string_view>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "services/user_interface.hpp"
#include "util/strings.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "store/codec.hpp"
#include "store/crc32c.hpp"
#include "wfl/xml_io.hpp"
#include "wire/channel.hpp"
#include "wire/codec.hpp"
#include "xml/xml.hpp"

namespace ig::svc {
namespace {

using agent::AclMessage;
using agent::Performative;

/// Strings that must never parse as a double (or int / uint).
const char* const kBadNumbers[] = {"", "   ", "abc", "12x", "1e999999", "--3", "nan(",
                                   "0x10"};

// ---------------------------------------------------------------------------
// util::parse_* unit coverage
// ---------------------------------------------------------------------------

TEST(ParseFuzz, DoubleAcceptsUsualShapes) {
  EXPECT_DOUBLE_EQ(util::parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(util::parse_double(" -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(util::parse_double("+4").value(), 4.0);
  EXPECT_DOUBLE_EQ(util::parse_double(".5").value(), 0.5);
}

TEST(ParseFuzz, DoubleRejectsGarbage) {
  for (const char* text : kBadNumbers)
    EXPECT_FALSE(util::parse_double(text).has_value()) << "'" << text << "'";
}

TEST(ParseFuzz, IntRejectsGarbageAndOverflow) {
  EXPECT_EQ(util::parse_int("-42").value(), -42);
  EXPECT_EQ(util::parse_int("+7").value(), 7);
  for (const char* text : kBadNumbers)
    EXPECT_FALSE(util::parse_int(text).has_value()) << "'" << text << "'";
  EXPECT_FALSE(util::parse_int("2.5").has_value());
  EXPECT_FALSE(util::parse_int("99999999999999999999").has_value());
}

TEST(ParseFuzz, UintRejectsNegatives) {
  EXPECT_EQ(util::parse_uint("18446744073709551615").value(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(util::parse_uint("-5").has_value());
  EXPECT_FALSE(util::parse_uint("-0").has_value());
  EXPECT_FALSE(util::parse_uint("18446744073709551616").has_value());
}

TEST(ParseFuzz, BoolAcceptsCanonicalForms) {
  EXPECT_TRUE(util::parse_bool("true").value());
  EXPECT_TRUE(util::parse_bool("TRUE").value());
  EXPECT_TRUE(util::parse_bool("1").value());
  EXPECT_FALSE(util::parse_bool("false").value());
  EXPECT_FALSE(util::parse_bool("0").value());
  EXPECT_FALSE(util::parse_bool("yes").has_value());
  EXPECT_FALSE(util::parse_bool("").has_value());
}

// ---------------------------------------------------------------------------
// AclMessage typed accessors
// ---------------------------------------------------------------------------

TEST(MessageFuzz, TypedAccessorsNeverThrow) {
  AclMessage message;
  message.params["d"] = "2.5";
  message.params["i"] = "-3";
  message.params["u"] = "7";
  message.params["b"] = "true";
  message.params["junk"] = "zzz";

  EXPECT_DOUBLE_EQ(message.param_double("d").value(), 2.5);
  EXPECT_EQ(message.param_int("i").value(), -3);
  EXPECT_EQ(message.param_uint("u").value(), 7u);
  EXPECT_TRUE(message.param_bool("b").value());

  EXPECT_FALSE(message.param_double("junk").has_value());
  EXPECT_FALSE(message.param_double("missing").has_value());
  EXPECT_FALSE(message.param_uint("i").has_value());  // negative where unsigned

  EXPECT_DOUBLE_EQ(message.param_double("junk", 9.0), 9.0);
  EXPECT_EQ(message.param_int("missing", 4), 4);
  EXPECT_EQ(message.param_uint("junk", 11u), 11u);
  EXPECT_TRUE(message.param_bool("missing", true));
}

TEST(MessageFuzz, DescribeBadParamNamesTheProblem) {
  AclMessage message;
  message.params["seed"] = "-5";
  const std::string described = message.describe_bad_param("seed", "uint");
  EXPECT_NE(described.find("seed"), std::string::npos);
  EXPECT_NE(described.find("-5"), std::string::npos);
  const std::string missing = message.describe_bad_param("nope", "double");
  EXPECT_NE(missing.find("missing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live services under fuzzed requests
// ---------------------------------------------------------------------------

class Client : public agent::Agent {
 public:
  explicit Client(std::string name = "ui") : Agent(std::move(name)) {}
  void handle_message(const AclMessage& message) override { replies.push_back(message); }

  void request(agent::AgentPlatform& platform, AclMessage message) {
    message.sender = name();
    platform.send(std::move(message));
  }

  std::vector<AclMessage> replies;
};

struct Fixture {
  Fixture() {
    EnvironmentOptions options;
    options.topology.domains = 2;
    options.topology.nodes_per_domain = 2;
    options.seed = 11;
    environment = make_environment(options);
    client = &environment->platform().spawn<Client>("fuzzer");
  }

  AclMessage last() const {
    EXPECT_FALSE(client->replies.empty());
    return client->replies.empty() ? AclMessage{} : client->replies.back();
  }

  std::unique_ptr<Environment> environment;
  Client* client = nullptr;
};

TEST(ServiceFuzz, SchedulingBouncesMalformedTaskWork) {
  for (const char* bad : {"", "abc", "1e999999"}) {
    Fixture fixture;
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kScheduling;
    request.protocol = protocols::kScheduleRequest;
    request.params["tasks"] = std::string("t1:") + bad;
    request.params["speeds"] = "1.0";
    fixture.client->request(fixture.environment->platform(), request);
    fixture.environment->run();
    const AclMessage reply = fixture.last();
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << "'" << bad << "'";
    EXPECT_NE(reply.param("reason").find("task entry"), std::string::npos);
  }
}

TEST(ServiceFuzz, SchedulingBouncesMalformedSpeed) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kScheduling;
  request.protocol = protocols::kScheduleRequest;
  request.params["tasks"] = "t1:4.0";
  request.params["speeds"] = "1.0,fast";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::NotUnderstood);
  EXPECT_NE(reply.param("reason").find("speed entry"), std::string::npos);
}

TEST(ServiceFuzz, MatchmakingBouncesMalformedDeadlineParams) {
  for (const char* key : {"work", "deadline"}) {
    Fixture fixture;
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kMatchmaking;
    request.protocol = protocols::kFindContainer;
    request.params["service"] = "P3DR";
    request.params["strategy"] = "deadline";
    request.params[key] = "not-a-number";
    fixture.client->request(fixture.environment->platform(), request);
    fixture.environment->run();
    const AclMessage reply = fixture.last();
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << key;
    EXPECT_NE(reply.param("reason").find(key), std::string::npos);
  }
}

TEST(ServiceFuzz, MatchmakingMissingDeadlineParamsFallBackToDefaults) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kMatchmaking;
  request.protocol = protocols::kFindContainer;
  request.params["service"] = "P3DR";
  request.params["strategy"] = "deadline";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Inform);
  EXPECT_FALSE(reply.param("container").empty());
}

TEST(ServiceFuzz, PlanningBouncesBadSeed) {
  for (const char* bad : {"abc", "-5", "1e999999", ""}) {
    Fixture fixture;
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kPlanning;
    request.protocol = protocols::kPlanRequest;
    request.content = wfl::case_to_xml_string(virolab::make_case_description());
    request.params["seed"] = bad;
    fixture.client->request(fixture.environment->platform(), request);
    fixture.environment->run();
    const AclMessage reply = fixture.last();
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << "'" << bad << "'";
    EXPECT_NE(reply.param("reason").find("seed"), std::string::npos);
  }
}

TEST(ServiceFuzz, PlanningFailsGracefullyOnGarbageCaseXml) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kPlanning;
  request.protocol = protocols::kPlanRequest;
  request.content = "<not-a-case>";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_FALSE(reply.param("error").empty());
}

TEST(ServiceFuzz, CoordinationRejectsGarbageProcessXml) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kCoordination;
  request.protocol = protocols::kEnactCase;
  request.content = "<<<definitely not xml";
  request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_FALSE(reply.param("error").empty());
}

/// Builds a structurally valid checkpoint document, then lets the caller
/// mangle one attribute before it is shipped to the coordination service.
xml::Document make_checkpoint() {
  xml::Document document("checkpoint");
  xml::Element& root = document.root();
  root.set_attribute("case", "case-x");
  root.add_child("process-xml")
      .set_text(wfl::process_to_xml_string(virolab::make_fig10_process()));
  root.add_child("case-xml")
      .set_text(wfl::case_to_xml_string(virolab::make_case_description()));
  root.add_child("dataset-xml").set_text(wfl::dataset_to_xml_string(wfl::DataSet{}));
  root.set_attribute("replans", "0");
  return document;
}

TEST(ServiceFuzz, CoordinationRejectsNonIntegerReplansInCheckpoint) {
  Fixture fixture;
  xml::Document checkpoint = make_checkpoint();
  checkpoint.root().set_attribute("replans", "abc");
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kCoordination;
  request.protocol = protocols::kRestoreCase;
  request.content = checkpoint.to_string();
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_NE(reply.param("error").find("bad checkpoint"), std::string::npos);
}

TEST(ServiceFuzz, CoordinationRejectsNonIntegerCompletionCount) {
  Fixture fixture;
  xml::Document checkpoint = make_checkpoint();
  xml::Element& completed = checkpoint.root().add_child("completions").add_child("completed");
  completed.set_attribute("activity", "A2");
  completed.set_attribute("count", "two");
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kCoordination;
  request.protocol = protocols::kRestoreCase;
  request.content = checkpoint.to_string();
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_NE(reply.param("error").find("bad checkpoint"), std::string::npos);
}

TEST(ServiceFuzz, BrokerageDropsReportWithMangledDuration) {
  Fixture fixture;
  AclMessage report;
  report.performative = Performative::Inform;
  report.receiver = names::kBrokerage;
  report.protocol = protocols::kReportPerformance;
  report.params["container"] = "fuzzed-container";
  report.params["outcome"] = "success";
  report.params["duration"] = "soon";
  fixture.client->request(fixture.environment->platform(), report);
  fixture.environment->run();
  EXPECT_EQ(fixture.environment->brokerage().history_of("fuzzed-container"), nullptr);
}

TEST(ServiceFuzz, BrokerageAcceptsReportWithMissingDuration) {
  Fixture fixture;
  AclMessage report;
  report.performative = Performative::Inform;
  report.receiver = names::kBrokerage;
  report.protocol = protocols::kReportPerformance;
  report.params["container"] = "fuzzed-container";
  report.params["outcome"] = "success";
  fixture.client->request(fixture.environment->platform(), report);
  fixture.environment->run();
  const auto* history = fixture.environment->brokerage().history_of("fuzzed-container");
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->successes, 1);
}

TEST(ServiceFuzz, UserInterfaceZeroesMangledOutcomeNumbers) {
  UserInterfaceAgent ui("ui");
  AclMessage done;
  done.performative = Performative::Inform;
  done.protocol = protocols::kCaseCompleted;
  done.params["success"] = "maybe";
  done.params["makespan"] = "fast";
  done.params["activities-executed"] = "1e999999";
  done.params["dispatch-failures"] = "-?";
  done.params["replans"] = "";
  ui.handle_message(done);
  ASSERT_TRUE(ui.finished());
  const TaskOutcome& outcome = ui.outcome();
  EXPECT_FALSE(outcome.success);
  EXPECT_DOUBLE_EQ(outcome.makespan, 0.0);
  EXPECT_EQ(outcome.activities_executed, 0);
  EXPECT_EQ(outcome.dispatch_failures, 0);
  EXPECT_EQ(outcome.replans, 0);
}

TEST(ServiceFuzz, EveryServiceBouncesUnknownProtocolWithReason) {
  Fixture fixture;
  const char* const services[] = {
      names::kInformation,  names::kBrokerage,  names::kMatchmaking,
      names::kMonitoring,   names::kOntology,   names::kAuthentication,
      names::kPersistentStorage, names::kScheduling, names::kSimulation,
      names::kCoordination, names::kPlanning};
  for (const char* service : services) {
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = service;
    request.protocol = "no-such-protocol";
    fixture.client->request(fixture.environment->platform(), request);
  }
  // One container agent too — it speaks the same bounce convention.
  const auto hosts = fixture.environment->grid().containers_hosting("POD");
  ASSERT_FALSE(hosts.empty());
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = hosts.front()->id();
  request.protocol = "no-such-protocol";
  fixture.client->request(fixture.environment->platform(), request);

  fixture.environment->run();
  ASSERT_EQ(fixture.client->replies.size(), std::size(services) + 1);
  for (const AclMessage& reply : fixture.client->replies) {
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << reply.sender;
    EXPECT_NE(reply.param("reason").find("no-such-protocol"), std::string::npos)
        << reply.sender;
  }
}

TEST(ServiceFuzz, InformFuzzToEveryServiceIsSilentlyTolerated) {
  // Inform/Failure carrying garbage must not bounce (reply-loop prevention)
  // and, above all, must not crash the platform.
  Fixture fixture;
  const char* const services[] = {
      names::kInformation,  names::kBrokerage,  names::kMatchmaking,
      names::kMonitoring,   names::kOntology,   names::kAuthentication,
      names::kPersistentStorage, names::kScheduling, names::kSimulation,
      names::kCoordination, names::kPlanning};
  for (const char* service : services) {
    AclMessage junk;
    junk.performative = Performative::Inform;
    junk.receiver = service;
    junk.protocol = "no-such-protocol";
    junk.params["work"] = "NaNaNaN";
    fixture.client->request(fixture.environment->platform(), junk);
  }
  fixture.environment->run();
  EXPECT_TRUE(fixture.client->replies.empty());
  EXPECT_EQ(fixture.environment->platform().handler_failures_total(), 0u);
}

// ---------------------------------------------------------------------------
// wire codec fuzz: hostile bytes against the real receive path
// ---------------------------------------------------------------------------
//
// The decode contract under attack: malformed input yields a decode error —
// never a throw, never an out-of-bounds read (the ASan/UBSan jobs run this
// suite). Vectors mirror store_test's WAL recovery fuzz: truncation at every
// length, a bit flip at every byte offset of the last frame, plus the
// intern-specific faults (references into a table the decoder never built)
// and hostile length prefixes.

wire::Stream make_wire_stream(std::string_view bytes) {
  wire::Stream stream;
  stream.feed_bytes(bytes);
  return stream;
}

/// Three-frame conversation sharing vocabulary, so frames 2 and 3 lean on
/// the intern table frame 1 defined.
std::string encode_three_frames() {
  wire::Encoder encoder;
  std::string bytes;
  for (int i = 0; i < 3; ++i) {
    AclMessage message;
    message.performative = Performative::Request;
    message.sender = "coordination";
    message.receiver = "ac-1";
    message.conversation_id = "case-" + std::to_string(i);
    message.protocol = "enactment-request";
    message.ontology = "grid-standard";
    message.params["activity"] = "mc-gen";
    encoder.encode(message, bytes);
  }
  return bytes;
}

TEST(WireFuzz, TruncationAtEveryLengthNeverThrowsOrDelivers) {
  const std::string bytes = encode_three_frames();
  // Find where the last frame starts by walking the first two.
  std::string_view payload;
  std::size_t first = 0, second = 0;
  ASSERT_EQ(wire::peek_frame(bytes, payload, first), wire::FrameStatus::kFrame);
  ASSERT_EQ(wire::peek_frame(std::string_view(bytes).substr(first), payload, second),
            wire::FrameStatus::kFrame);
  const std::size_t last_begin = first + second;

  for (std::size_t length = last_begin; length < bytes.size(); ++length) {
    wire::Stream stream = make_wire_stream(bytes.substr(0, length));
    const std::size_t delivered = stream.receive([](const wire::WireMessageView&) {});
    EXPECT_EQ(delivered, 2u) << "cut at " << length;  // intact frames still land
    EXPECT_EQ(stream.decode_errors(), 0u);            // truncation != corruption
    EXPECT_EQ(stream.pending_bytes(), length - last_begin);  // tail awaits more bytes
  }
}

TEST(WireFuzz, BitFlipAtEveryByteOffsetOfTheLastFrameIsADecodeErrorNotACrash) {
  const std::string bytes = encode_three_frames();
  std::string_view payload;
  std::size_t first = 0, second = 0;
  ASSERT_EQ(wire::peek_frame(bytes, payload, first), wire::FrameStatus::kFrame);
  ASSERT_EQ(wire::peek_frame(std::string_view(bytes).substr(first), payload, second),
            wire::FrameStatus::kFrame);
  const std::size_t last_begin = first + second;

  for (std::size_t offset = last_begin; offset < bytes.size(); ++offset) {
    std::string mutated = bytes;
    mutated[offset] = static_cast<char>(mutated[offset] ^ 0x01);
    wire::Stream stream = make_wire_stream(mutated);
    std::size_t valid = 0;
    const std::size_t delivered = stream.receive([&](const wire::WireMessageView& view) {
      // Whatever decodes must be internally consistent, not garbage.
      if (view.sender == "coordination") ++valid;
    });
    EXPECT_EQ(valid, delivered);
    EXPECT_GE(delivered, 2u) << "offset " << offset;  // intact prefix always lands
    // The flipped frame either failed its checksum / payload decode, or
    // (flip in the length prefix) turned into a partial or oversized frame.
    const bool rejected = stream.decode_errors() > 0;
    const bool still_pending = stream.pending_bytes() > 0;
    EXPECT_TRUE(rejected || still_pending || delivered == 3u) << "offset " << offset;
    // A third delivery would mean a 1-bit corruption slid through crc32c on
    // this tiny frame — that is a codec bug, not bad luck.
    EXPECT_LT(delivered, 3u) << "offset " << offset;
  }
}

TEST(WireFuzz, FrameWithoutItsInternDefinitionsIsAStaleIdError) {
  // Deliver only the *last* frame of the conversation to a fresh decoder:
  // every vocabulary field is a reference into a table nobody built.
  const std::string bytes = encode_three_frames();
  std::string_view payload;
  std::size_t first = 0, second = 0;
  ASSERT_EQ(wire::peek_frame(bytes, payload, first), wire::FrameStatus::kFrame);
  ASSERT_EQ(wire::peek_frame(std::string_view(bytes).substr(first), payload, second),
            wire::FrameStatus::kFrame);

  wire::Stream stream = make_wire_stream(std::string_view(bytes).substr(first + second));
  const std::size_t delivered = stream.receive([](const wire::WireMessageView&) {});
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stream.decode_errors(), 1u);
  EXPECT_NE(stream.last_error().find("intern"), std::string::npos) << stream.last_error();
}

TEST(WireFuzz, ForgedInternIdsFarBeyondTheTableAreRejected) {
  // Hand-build a payload whose performative field references id 2^20: the
  // decoder must bounds-check before indexing.
  std::string payload;
  payload.push_back(static_cast<char>(wire::kWireVersion));
  wire::put_varint(payload, 1u << 20);  // interned performative: forged reference
  store::Writer(payload).str("s");      // sender; decode dies before needing the rest

  std::string frame;
  store::Writer header(frame);
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u32(store::crc32c(payload));
  frame += payload;

  wire::Stream stream = make_wire_stream(frame);
  const std::size_t delivered = stream.receive([](const wire::WireMessageView&) {});
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stream.decode_errors(), 1u);
}

TEST(WireFuzz, OversizedLengthPrefixIsRejectedBeforeAnyAllocation) {
  for (const std::uint32_t claimed : {0xFFFFFFFFu, 0x7FFFFFFFu,
                                      static_cast<std::uint32_t>(wire::kMaxFramePayload) + 1}) {
    std::string bytes;
    store::Writer header(bytes);
    header.u32(claimed);
    header.u32(0xDEADBEEFu);
    bytes += std::string(64, 'x');
    wire::Stream stream = make_wire_stream(bytes);
    const std::size_t delivered = stream.receive([](const wire::WireMessageView&) {});
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(stream.decode_errors(), 1u) << claimed;
    EXPECT_NE(stream.last_error().find("length"), std::string::npos) << stream.last_error();
  }
}

TEST(WireFuzz, RandomGarbageBuffersNeverThrow) {
  std::mt19937_64 rng(2004);
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage(1 + rng() % 256, '\0');
    for (char& c : garbage) c = static_cast<char>(rng());
    wire::Stream stream = make_wire_stream(garbage);
    stream.receive([](const wire::WireMessageView&) {});  // must simply not crash
  }
}

}  // namespace
}  // namespace ig::svc
