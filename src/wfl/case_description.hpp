// Case descriptions: per-instance bindings for a process description.
//
// "A case description provides additional information for a particular
// instance of the process the user wishes to perform, e.g., it provides the
// location of the actual data for the computation, additional constraints,
// and conditions." The Figure 13 instance carries the initial data set
// {D1..D7}, the goal result set {D12}, and the constraint Cons1 that drives
// the refinement loop.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "wfl/condition.hpp"
#include "wfl/data.hpp"

namespace ig::wfl {

/// One goal: "the final state must contain a data item satisfying this
/// condition". The condition references a single variable which is bound,
/// in turn, to every item of the final state (existential semantics).
struct GoalSpec {
  std::string description;  ///< human-readable label, e.g. "resolution file produced"
  Condition condition;

  /// True when some item of `data` satisfies the condition.
  bool satisfied_by(const DataSet& data) const;
};

/// A case description (the Case Description frame of Figure 12).
class CaseDescription {
 public:
  explicit CaseDescription(std::string name = "case") : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& id() const noexcept { return id_; }
  void set_id(std::string id) { id_ = std::move(id); }

  /// Name of the process description this case instantiates.
  const std::string& process_name() const noexcept { return process_name_; }
  void set_process_name(std::string name) { process_name_ = std::move(name); }

  // -- initial data -----------------------------------------------------------
  DataSet& initial_data() noexcept { return initial_data_; }
  const DataSet& initial_data() const noexcept { return initial_data_; }

  // -- goals -------------------------------------------------------------------
  void add_goal(GoalSpec goal) { goals_.push_back(std::move(goal)); }
  const std::vector<GoalSpec>& goals() const noexcept { return goals_; }
  /// Fraction of goals satisfied by `data` (1.0 when there are no goals).
  double goal_satisfaction(const DataSet& data) const;

  // -- named constraints --------------------------------------------------------
  /// Registers a named constraint such as Cons1; referenced by activities.
  void add_constraint(std::string name, Condition condition);
  const Condition* find_constraint(std::string_view name) const noexcept;
  const std::vector<std::pair<std::string, Condition>>& constraints() const noexcept {
    return constraints_;
  }

  // -- expected results -----------------------------------------------------------
  void add_expected_result(std::string data_name) {
    expected_results_.push_back(std::move(data_name));
  }
  const std::vector<std::string>& expected_results() const noexcept { return expected_results_; }

 private:
  std::string id_;
  std::string name_;
  std::string process_name_;
  DataSet initial_data_;
  std::vector<GoalSpec> goals_;
  std::vector<std::pair<std::string, Condition>> constraints_;
  std::vector<std::string> expected_results_;
};

}  // namespace ig::wfl
