#include "grid/hardware.hpp"

#include "util/strings.hpp"

namespace ig::grid {

std::string HardwareSpec::to_display_string() const {
  std::string out = type;
  out += " speed=" + util::format_number(speed);
  out += " mem=" + util::format_number(memory_gb) + "GB";
  out += " bw=" + util::format_number(bandwidth_mbps) + "Mbps";
  out += " lat=" + util::format_number(latency_ms) + "ms";
  if (!model.empty()) out += " (" + model + ")";
  return out;
}

bool satisfies(const SoftwareSpec& installed, const SoftwareSpec& required) {
  if (!required.name.empty() && installed.name != required.name) return false;
  if (!required.version.empty() && installed.version != required.version) return false;
  if (!required.type.empty() && installed.type != required.type) return false;
  return true;
}

bool has_software(const std::vector<SoftwareSpec>& installed, const SoftwareSpec& required) {
  for (const auto& software : installed) {
    if (satisfies(software, required)) return true;
  }
  return false;
}

}  // namespace ig::grid
