# Empty dependencies file for bench_table2_planning.
# This may be replaced when dependencies are built.
