# Empty compiler generated dependencies file for ig_xml.
# This may be replaced when dependencies are built.
