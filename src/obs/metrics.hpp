// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The hot path is lock-free: Counter::inc, Gauge::set/add and
// Histogram::observe are relaxed atomic operations on pre-registered
// instruments, so a shard worker can bump them inside the enactment loop
// without serializing against the metrics reader. Registration and
// snapshot() take the registry mutex — both are cold (registration happens
// once at startup, snapshots at reporting time) — and snapshot() yields one
// consistent view that the exporters in obs/export.hpp serialize as
// Prometheus text, Chrome trace JSON, or JSON Lines.
//
// Histograms keep two representations at once: fixed cumulative-style
// buckets (what Prometheus scrapes) and a lock-free ring of the most recent
// raw samples, from which quantiles are computed *exactly* — with the same
// linear interpolation as util::SampleSet — as long as the ring has not
// wrapped. Bench harnesses size the ring above their sample counts, so the
// registry-derived p50/p99 match the former SampleSet-derived values
// bitwise on the same run.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ig::obs {

/// Metric labels, e.g. {{"shard", "0"}}. Order is preserved and significant
/// for identity (the registry keys instruments by name + rendered labels).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. `set_to` exists for the publish
/// pattern: a component that already owns an atomic counter pushes its
/// current absolute value into the registry at snapshot time instead of
/// double-counting events on the hot path.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void set_to(std::uint64_t value) noexcept { value_.store(value, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down (queue depth, utilization).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// One consistent histogram view. `samples` is the retained raw-sample
/// window, already sorted ascending; when `count <= samples.size()` it is
/// the complete population and quantiles are exact.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  std::vector<double> bounds;           ///< bucket upper bounds; +Inf implicit last
  std::vector<std::uint64_t> buckets;   ///< per-bucket counts, bounds.size() + 1
  std::vector<double> samples;          ///< retained window, sorted ascending

  /// NaN when empty. Exact (SampleSet-compatible interpolation) over the
  /// retained window.
  double quantile(double q) const;
  /// Multi-quantile in one pass over the already-sorted window.
  std::vector<double> quantiles(const std::vector<double>& qs) const;
  double mean() const;  ///< sum / count; NaN when empty
};

/// Fixed-bucket histogram with a raw-sample ring for exact quantiles.
class Histogram {
 public:
  /// `bounds` are ascending bucket upper bounds (an overflow bucket is
  /// added); `sample_capacity` sizes the raw ring (oldest samples are
  /// overwritten once it wraps).
  explicit Histogram(std::vector<double> bounds, std::size_t sample_capacity = 8192);

  void observe(double value) noexcept;

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  std::size_t sample_capacity() const noexcept { return capacity_; }

  /// One consistent view. Safe to call while writers run: a snapshot taken
  /// mid-observe may miss the in-flight sample, never sees a torn one.
  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::size_t capacity_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::unique_ptr<std::atomic<double>[]> ring_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Latency-shaped exponential bounds, 1 ms .. 60 s.
std::vector<double> default_latency_buckets();

enum class MetricKind { Counter, Gauge, Histogram };

const char* to_string(MetricKind kind) noexcept;

/// One metric in a registry snapshot.
struct MetricPoint {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::Counter;
  double value = 0.0;            ///< counter / gauge value
  HistogramSnapshot histogram;   ///< populated when kind == Histogram
};

struct RegistrySnapshot {
  std::vector<MetricPoint> points;  ///< sorted by (name, labels)

  const MetricPoint* find(const std::string& name, const Labels& labels = {}) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under (name, labels), creating it on
  /// first use. References stay valid for the registry's lifetime. Asking
  /// for an existing name with a different instrument kind throws.
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const Labels& labels = {}, std::size_t sample_capacity = 8192);

  RegistrySnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricKind kind = MetricKind::Counter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_locked(const std::string& name, const Labels& labels, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;  ///< key = name + rendered labels
};

}  // namespace ig::obs
