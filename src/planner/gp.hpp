// The genetic-based planning procedure (Section 3.4.6).
//
//   1. Initialize population;
//   2. While some stopping conditions are not met, do
//      (a) Evaluate the current population;
//      (b) Select the individuals ... and form a new population;
//      (c) Crossover;  (d) Mutate;
//   3. Select a plan that has the highest fitness as the final solution.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "planner/evaluate.hpp"
#include "planner/operators.hpp"
#include "planner/plan_tree.hpp"
#include "planner/problem.hpp"
#include "sched/job_system.hpp"
#include "util/rng.hpp"

namespace ig::planner {

/// Which scheduler drives the data-parallel GP loops. JobSystem is the
/// production path (work-stealing, chunked parallel_for); LegacyPool keeps
/// the old util::ThreadPool reachable so bench_planner_parallel can A/B the
/// two on identical work. Both are bitwise-deterministic.
enum class GpScheduler { JobSystem, LegacyPool };

/// Table 1's parameter settings, as defaults.
struct GpConfig {
  std::size_t population_size = 200;
  std::size_t generations = 20;
  double crossover_rate = 0.7;
  double mutation_rate = 0.001;
  EvaluationConfig evaluation;  ///< Smax = 40, wv = 0.2, wg = 0.5, wr = 0.3
  InitStyle init_style = InitStyle::Grow;
  SelectionScheme selection = SelectionScheme::Tournament;
  std::size_t tournament_size = 2;
  /// Individuals copied unchanged into the next generation. The paper's
  /// pseudocode has no elitism; 1 preserves the best-so-far and is the
  /// default for the experiment harness (ablation A5 covers 0).
  std::size_t elitism = 1;
  /// Stop early once a plan reaches this fitness (nullopt: run all
  /// generations). The paper runs a fixed generation budget.
  std::optional<double> target_fitness;
  std::uint64_t seed = 1;
  /// Worker threads for population evaluation and variation. 0 means
  /// hardware_concurrency; 1 runs everything inline on the caller. Every
  /// individual draws from its own RNG stream derived from
  /// (seed, generation, index), so the result is bitwise-identical at any
  /// thread count — `threads` is purely a wall-clock knob.
  std::size_t threads = 0;
  /// Benchmarking knob; see GpScheduler. Leave at JobSystem.
  GpScheduler scheduler = GpScheduler::JobSystem;
};

/// Per-generation progress sample.
struct GenerationStats {
  std::size_t generation = 0;
  double best_fitness = 0.0;
  double mean_fitness = 0.0;
  double best_validity = 0.0;
  double best_goal = 0.0;
  std::size_t best_size = 0;
};

/// Outcome of one GP run.
struct GpResult {
  PlanNode best_plan;
  Fitness best_fitness;
  std::vector<GenerationStats> history;
  std::size_t evaluations = 0;
  /// Evaluations served from the fitness memo (elites and post-selection
  /// clones). Advisory: unlike every other field, this can vary with thread
  /// count, because two workers racing the same new plan both count a miss.
  std::size_t memo_hits = 0;
  /// Worker threads actually used (resolves the config's 0 = auto).
  std::size_t threads_used = 1;
  /// Job-system counters for the run (all zero on the serial and legacy-pool
  /// paths). Scheduling-dependent — how much was stolen varies with timing —
  /// unlike every result field above.
  sched::JobStats scheduler_stats;
};

/// Runs the GP planner on one problem. Deterministic given config.seed:
/// best plan, fitness, history and evaluation count are bitwise-identical
/// for every value of config.threads (see DESIGN.md, "Concurrency model &
/// determinism").
GpResult run_gp(const PlanningProblem& problem, const GpConfig& config);

}  // namespace ig::planner
