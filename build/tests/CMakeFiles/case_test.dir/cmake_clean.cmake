file(REMOVE_RECURSE
  "CMakeFiles/case_test.dir/case_test.cpp.o"
  "CMakeFiles/case_test.dir/case_test.cpp.o.d"
  "case_test"
  "case_test.pdb"
  "case_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
