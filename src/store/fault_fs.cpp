#include "store/fault_fs.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/rng.hpp"

namespace ig::store {
namespace {

bool space_consuming(FileOp op) {
  switch (op) {
    case FileOp::kOpen:
    case FileOp::kPwrite:
    case FileOp::kTruncate:
    case FileOp::kMsync:
    case FileOp::kRename:
    case FileOp::kMkdir:
      return true;
    default:
      return false;
  }
}

bool writes_bytes(FileOp op) { return op == FileOp::kPwrite || op == FileOp::kMsync; }

}  // namespace

const char* to_string(FileOp op) {
  switch (op) {
    case FileOp::kOpen: return "open";
    case FileOp::kPread: return "pread";
    case FileOp::kPwrite: return "pwrite";
    case FileOp::kFsync: return "fsync";
    case FileOp::kTruncate: return "ftruncate";
    case FileOp::kMmap: return "mmap";
    case FileOp::kMsync: return "msync";
    case FileOp::kRename: return "rename";
    case FileOp::kUnlink: return "unlink";
    case FileOp::kMkdir: return "mkdir";
  }
  return "unknown";
}

bool FaultMatch::matches(FileOp candidate, const std::string& candidate_path) const {
  if (op.has_value() && *op != candidate) return false;
  if (path.empty()) return true;
  if (!path.empty() && path.back() == '*')
    return candidate_path.rfind(path.substr(0, path.size() - 1), 0) == 0;
  return candidate_path == path;
}

FaultFs::FaultFs(FaultFsOptions options, FileOps& inner)
    : options_(std::move(options)), inner_(inner) {}

FaultFs::~FaultFs() {
  // Leaked mappings mean a Segment outlived its FaultFs — release anyway.
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [addr, mapping] : mappings_) {
    ::operator delete(addr);
    ::close(mapping.fd);
  }
  mappings_.clear();
}

std::optional<FaultAction> FaultFs::judge(FileOp op, const std::string& path,
                                          std::uint64_t* op_index) {
  const std::uint64_t n = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (op_index != nullptr) *op_index = n;

  std::optional<FaultAction> action;
  bool from_power_cut = false;
  if (options_.power_cut_after > 0 && n > options_.power_cut_after) {
    // After the cut there is no disk: every operation fails, forever.
    power_cut_.store(true, std::memory_order_relaxed);
    action = FaultAction::kIoError;
    from_power_cut = true;
  }
  if (!action.has_value()) {
    for (const OneShotFault& shot : options_.one_shots) {
      if (shot.at_op == n) {
        action = shot.action;
        break;
      }
    }
  }
  if (!action.has_value()) {
    for (const FaultRule& rule : options_.rules) {
      if (!rule.match.matches(op, path)) continue;
      // Draws happen in declaration order, unconditionally, so the random
      // stream for operation n does not depend on which op kind n is.
      util::Rng rng(util::derive_stream(options_.seed, n));
      const bool io = rng.next_bool(rule.io_error);
      const bool nospace = rng.next_bool(rule.no_space);
      const bool tear = rng.next_bool(rule.short_write);
      const bool fsync_fail = rng.next_bool(rule.fsync_error);
      if (io) action = FaultAction::kIoError;
      else if (nospace && space_consuming(op)) action = FaultAction::kNoSpace;
      else if (tear && writes_bytes(op)) action = FaultAction::kShortWrite;
      else if (fsync_fail && (op == FileOp::kFsync || op == FileOp::kMsync))
        action = FaultAction::kFsyncFailure;
      break;  // only the first matching rule applies
    }
  }

  // Degrade inapplicable actions to plain EIO so at-every-op sweeps never
  // silently skip a point.
  if (action == FaultAction::kShortWrite && !writes_bytes(op))
    action = FaultAction::kIoError;
  if (action == FaultAction::kFsyncFailure && op != FileOp::kFsync && op != FileOp::kMsync)
    action = FaultAction::kIoError;

  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.ops;
  if (from_power_cut) {
    ++stats_.power_cut_failures;
  } else if (action.has_value()) {
    switch (*action) {
      case FaultAction::kIoError: ++stats_.io_errors; break;
      case FaultAction::kNoSpace: ++stats_.no_space; break;
      case FaultAction::kShortWrite: ++stats_.short_writes; break;
      case FaultAction::kFsyncFailure: ++stats_.fsync_failures; break;
    }
  }
  return action;
}

int FaultFs::refuse(FaultAction action) {
  errno = action == FaultAction::kNoSpace ? ENOSPC : EIO;
  return -1;
}

int FaultFs::open(const std::string& path, int flags, int mode) {
  if (const auto action = judge(FileOp::kOpen, path, nullptr)) return refuse(*action);
  const int fd = inner_.open(path, flags, mode);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_[fd] = path;
  }
  return fd;
}

int FaultFs::close(int fd) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fd_paths_.erase(fd);
  }
  return inner_.close(fd);
}

ssize_t FaultFs::pread(int fd, void* buf, std::size_t count, off_t offset) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fd_paths_.find(fd);
    if (it != fd_paths_.end()) path = it->second;
  }
  if (const auto action = judge(FileOp::kPread, path, nullptr)) return refuse(*action);
  return inner_.pread(fd, buf, count, offset);
}

ssize_t FaultFs::pwrite(int fd, const void* buf, std::size_t count, off_t offset) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fd_paths_.find(fd);
    if (it != fd_paths_.end()) path = it->second;
  }
  std::uint64_t n = 0;
  const auto action = judge(FileOp::kPwrite, path, &n);
  if (!action.has_value()) return inner_.pwrite(fd, buf, count, offset);
  if (*action == FaultAction::kShortWrite && count > 0) {
    // A torn write: a deterministic prefix reaches the disk, the syscall
    // reports failure. What reopen finds at the tail is the test's problem.
    util::Rng rng(util::derive_stream(options_.seed, n, 7));
    const std::size_t prefix = static_cast<std::size_t>(rng.next_below(count));
    if (prefix > 0) inner_.pwrite(fd, buf, prefix, offset);
    errno = EIO;
    return -1;
  }
  return refuse(*action);
}

int FaultFs::fsync(int fd) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fd_paths_.find(fd);
    if (it != fd_paths_.end()) path = it->second;
  }
  if (const auto action = judge(FileOp::kFsync, path, nullptr)) return refuse(*action);
  return inner_.fsync(fd);
}

int FaultFs::ftruncate(int fd, off_t length) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fd_paths_.find(fd);
    if (it != fd_paths_.end()) path = it->second;
  }
  if (const auto action = judge(FileOp::kTruncate, path, nullptr)) return refuse(*action);
  return inner_.ftruncate(fd, length);
}

off_t FaultFs::size(int fd) {
  // Metadata read; not an ISSUE-listed fault point, passes through uncounted.
  return inner_.size(fd);
}

void* FaultFs::mmap(int fd, std::size_t length) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = fd_paths_.find(fd);
    if (it != fd_paths_.end()) path = it->second;
  }
  if (const auto action = judge(FileOp::kMmap, path, nullptr)) {
    refuse(*action);
    return MAP_FAILED;
  }
  const int dup_fd = ::dup(fd);
  if (dup_fd < 0) return MAP_FAILED;
  auto* buffer = static_cast<unsigned char*>(::operator new(length));
  std::memset(buffer, 0, length);
  std::size_t filled = 0;
  while (filled < length) {
    const ssize_t got = inner_.pread(dup_fd, buffer + filled, length - filled,
                                     static_cast<off_t>(filled));
    if (got < 0) {
      const int err = errno;
      ::operator delete(buffer);
      ::close(dup_fd);
      errno = err;
      return MAP_FAILED;
    }
    if (got == 0) break;  // short file: the remainder stays zero
    filled += static_cast<std::size_t>(got);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  mappings_[buffer] = Mapping{dup_fd, length, path};
  return buffer;
}

int FaultFs::msync(void* addr, std::size_t length, bool sync) {
  Mapping mapping;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = mappings_.find(addr);
    if (it == mappings_.end()) {
      // Not one of ours (shouldn't happen; be transparent anyway).
      return inner_.msync(addr, length, sync);
    }
    mapping = it->second;
  }
  std::uint64_t n = 0;
  const auto action = judge(FileOp::kMsync, mapping.path, &n);
  const auto* buffer = static_cast<const unsigned char*>(addr);
  if (!action.has_value())
    return write_back(mapping, buffer, length, sync) ? 0 : -1;
  if (*action == FaultAction::kShortWrite && length > 0) {
    // The flush tore: a deterministic prefix of the mapping is durable,
    // the rest never reached the disk — the canonical torn-tail producer.
    util::Rng rng(util::derive_stream(options_.seed, n, 7));
    const std::size_t prefix = static_cast<std::size_t>(rng.next_below(length));
    if (prefix > 0) {
      Mapping prefix_target = mapping;
      prefix_target.length = prefix;
      write_back(prefix_target, buffer, prefix, true);
    }
    errno = EIO;
    return -1;
  }
  // kFsyncFailure / kIoError / kNoSpace: nothing is written. Durability of
  // earlier page-cache state is exactly as unknown as after a real failed
  // fsync, which is why the WAL treats this as fail-stop.
  return refuse(*action);
}

int FaultFs::munmap(void* addr, std::size_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = mappings_.find(addr);
  if (it == mappings_.end()) return inner_.munmap(addr, length);
  ::close(it->second.fd);
  mappings_.erase(it);
  ::operator delete(addr);
  return 0;
}

int FaultFs::rename(const std::string& from, const std::string& to) {
  if (const auto action = judge(FileOp::kRename, from, nullptr)) return refuse(*action);
  return inner_.rename(from, to);
}

int FaultFs::unlink(const std::string& path) {
  if (const auto action = judge(FileOp::kUnlink, path, nullptr)) return refuse(*action);
  return inner_.unlink(path);
}

int FaultFs::mkdir(const std::string& path, int mode) {
  if (const auto action = judge(FileOp::kMkdir, path, nullptr)) return refuse(*action);
  return inner_.mkdir(path, mode);
}

FaultFsStats FaultFs::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool FaultFs::write_back(const Mapping& mapping, const unsigned char* buffer,
                         std::size_t length, bool sync) {
  std::size_t written = 0;
  while (written < length) {
    const ssize_t wrote = inner_.pwrite(mapping.fd, buffer + written, length - written,
                                        static_cast<off_t>(written));
    if (wrote <= 0) return false;
    written += static_cast<std::size_t>(wrote);
  }
  if (sync && inner_.fsync(mapping.fd) != 0) return false;
  return true;
}

}  // namespace ig::store
