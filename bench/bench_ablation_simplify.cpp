// Ablation A11 — plan simplification as a post-processing step.
//
// Repeats the Table 2 experiment and additionally simplifies each run's
// best plan (fitness-preserving subtree deletion). The paper reports an
// average best-plan size of 9.7 with Smax = 40; simplification shows how
// much of that size is dead weight the fr term failed to squeeze out.
#include <cstdio>

#include "planner/gp.hpp"
#include "planner/simplify.hpp"
#include "util/stats.hpp"
#include "virolab/catalogue.hpp"

using namespace ig;

int main() {
  const planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::PlanEvaluator evaluator(problem);

  constexpr int kRuns = 10;
  util::SampleSet raw_size;
  util::SampleSet simplified_size;
  util::SampleSet raw_fitness;
  util::SampleSet simplified_fitness;
  std::size_t extra_evaluations = 0;

  std::printf("A11: GP best plans before/after fitness-preserving simplification (%d runs)\n\n",
              kRuns);
  std::printf("%-5s %-18s %-18s %s\n", "run", "raw size/fitness", "simplified", "removed");
  for (int run = 1; run <= kRuns; ++run) {
    planner::GpConfig config;  // Table 1 defaults
    config.seed = static_cast<std::uint64_t>(run);
    const planner::GpResult result = planner::run_gp(problem, config);
    const planner::SimplifyResult simplified =
        planner::simplify_plan(result.best_plan, evaluator);

    raw_size.add(static_cast<double>(result.best_fitness.size));
    simplified_size.add(static_cast<double>(simplified.plan.size()));
    raw_fitness.add(result.best_fitness.overall);
    simplified_fitness.add(simplified.fitness.overall);
    extra_evaluations += simplified.evaluations;
    std::printf("%-5d %2zu / %-12.4f %2zu / %-12.4f %zu nodes\n", run,
                result.best_fitness.size, result.best_fitness.overall,
                simplified.plan.size(), simplified.fitness.overall,
                simplified.removed_nodes);
  }

  std::printf("\n%-28s %-10s %s\n", "", "raw", "simplified");
  std::printf("%-28s %-10.1f %.1f   (paper raw: 9.7)\n", "mean best-plan size",
              raw_size.mean(), simplified_size.mean());
  std::printf("%-28s %-10.4f %.4f (paper raw: 0.928)\n", "mean best fitness",
              raw_fitness.mean(), simplified_fitness.mean());
  std::printf("extra evaluations for simplification: %zu total (%0.1f per run)\n",
              extra_evaluations, static_cast<double>(extra_evaluations) / kRuns);

  const bool ok = simplified_size.mean() <= raw_size.mean() &&
                  simplified_fitness.mean() + 1e-9 >= raw_fitness.mean();
  std::printf("shape holds (simplification never hurts): %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
