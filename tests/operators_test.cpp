#include <gtest/gtest.h>

#include "planner/operators.hpp"
#include "virolab/catalogue.hpp"

namespace ig::planner {
namespace {

wfl::ServiceCatalogue catalogue() { return virolab::make_catalogue(); }

TEST(RandomTree, RespectsSizeBoundAndStructure) {
  util::Rng rng(1);
  const auto services = catalogue();
  for (int i = 0; i < 200; ++i) {
    const PlanNode tree = random_tree(rng, services, 40);
    EXPECT_LE(tree.size(), 40u);
    EXPECT_GE(tree.size(), 1u);
    EXPECT_EQ(check_structure(tree), "") << tree.to_tree_string();
  }
}

TEST(RandomTree, TerminalsNameCatalogueServices) {
  util::Rng rng(2);
  const auto services = catalogue();
  const PlanNode tree = random_tree(rng, services, 30);
  std::vector<const PlanNode*> stack{&tree};
  while (!stack.empty()) {
    const PlanNode* node = stack.back();
    stack.pop_back();
    if (node->is_terminal()) {
      EXPECT_NE(services.find(node->service), nullptr) << node->service;
    }
    for (const auto& child : node->children) stack.push_back(&child);
  }
}

TEST(RandomTree, SizeOneYieldsTerminal) {
  util::Rng rng(3);
  const PlanNode tree = random_tree(rng, catalogue(), 1);
  EXPECT_TRUE(tree.is_terminal());
}

TEST(RandomTree, ProducesVariedKinds) {
  util::Rng rng(4);
  const auto services = catalogue();
  bool saw_controller = false;
  bool saw_terminal_root = false;
  for (int i = 0; i < 100; ++i) {
    const PlanNode tree = random_tree(rng, services, 20);
    if (tree.is_terminal()) saw_terminal_root = true;
    else saw_controller = true;
  }
  EXPECT_TRUE(saw_controller);
  EXPECT_TRUE(saw_terminal_root);
}

TEST(RandomTree, EmptyCatalogueFallsBack) {
  util::Rng rng(5);
  wfl::ServiceCatalogue empty;
  const PlanNode tree = random_tree(rng, empty, 5);
  EXPECT_EQ(check_structure(tree), "");
}

namespace {
std::size_t min_terminal_depth(const PlanNode& node) {
  if (node.is_terminal()) return 1;
  std::size_t best = SIZE_MAX;
  for (const auto& child : node.children)
    best = std::min(best, min_terminal_depth(child));
  return best + 1;
}
}  // namespace

TEST(RandomTree, FullStylePlacesTerminalsDeeper) {
  util::Rng rng(21);
  const auto services = catalogue();
  // Full-style construction keeps controllers going until the budget is
  // nearly spent, so the *shallowest* terminal sits deeper than in
  // grow-style trees (which may drop a terminal right under the root).
  double grow_depth = 0;
  double full_depth = 0;
  int samples = 0;
  for (int i = 0; i < 300; ++i) {
    const PlanNode grow = random_tree(rng, services, 30, InitStyle::Grow);
    const PlanNode full = random_tree(rng, services, 30, InitStyle::Full);
    EXPECT_EQ(check_structure(grow), "");
    EXPECT_EQ(check_structure(full), "");
    EXPECT_LE(full.size(), 30u);
    if (grow.size() < 8 || full.size() < 8) continue;
    grow_depth += static_cast<double>(min_terminal_depth(grow));
    full_depth += static_cast<double>(min_terminal_depth(full));
    ++samples;
  }
  ASSERT_GT(samples, 50);
  EXPECT_GT(full_depth / samples, grow_depth / samples);
}

TEST(RandomTree, RampedMixesBothStyles) {
  util::Rng rng(22);
  const auto services = catalogue();
  for (int i = 0; i < 100; ++i) {
    const PlanNode tree = random_tree(rng, services, 25, InitStyle::Ramped);
    EXPECT_EQ(check_structure(tree), "");
    EXPECT_LE(tree.size(), 25u);
  }
}

TEST(Mutation, StyleParameterRespectsSmax) {
  util::Rng rng(23);
  const auto services = catalogue();
  for (int i = 0; i < 50; ++i) {
    PlanNode tree = random_tree(rng, services, 20);
    mutate(tree, rng, services, 0.5, 30, InitStyle::Full);
    EXPECT_LE(tree.size(), 30u);
    EXPECT_EQ(check_structure(tree), "");
  }
}

TEST(Crossover, RateZeroNeverApplies) {
  util::Rng rng(6);
  const auto services = catalogue();
  const PlanNode a = random_tree(rng, services, 20);
  const PlanNode b = random_tree(rng, services, 20);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(crossover(a, b, rng, 0.0, 40).applied);
  }
}

TEST(Crossover, SwapsSubtreesAndPreservesTotalSize) {
  util::Rng rng(7);
  const auto services = catalogue();
  int applied = 0;
  for (int i = 0; i < 100; ++i) {
    const PlanNode a = random_tree(rng, services, 20);
    const PlanNode b = random_tree(rng, services, 20);
    const CrossoverResult result = crossover(a, b, rng, 1.0, 40);
    if (!result.applied) continue;
    ++applied;
    EXPECT_EQ(result.first.size() + result.second.size(), a.size() + b.size());
    EXPECT_EQ(check_structure(result.first), "");
    EXPECT_EQ(check_structure(result.second), "");
    EXPECT_LE(result.first.size(), 40u);
    EXPECT_LE(result.second.size(), 40u);
  }
  EXPECT_GT(applied, 50);
}

TEST(Crossover, FailsWhenChildWouldExceedSmax) {
  util::Rng rng(8);
  const auto services = catalogue();
  // Tiny Smax: swapping a big subtree into a big tree must fail often;
  // verify the guarantee rather than the frequency.
  for (int i = 0; i < 100; ++i) {
    const PlanNode a = random_tree(rng, services, 10);
    const PlanNode b = random_tree(rng, services, 10);
    const CrossoverResult result = crossover(a, b, rng, 1.0, 10);
    if (result.applied) {
      EXPECT_LE(result.first.size(), 10u);
      EXPECT_LE(result.second.size(), 10u);
    }
  }
}

TEST(Mutation, RateZeroNeverChanges) {
  util::Rng rng(9);
  const auto services = catalogue();
  PlanNode tree = random_tree(rng, services, 20);
  const PlanNode original = tree;
  EXPECT_FALSE(mutate(tree, rng, services, 0.0, 40));
  EXPECT_EQ(tree, original);
}

TEST(Mutation, RateOneChangesAndRespectsSmax) {
  util::Rng rng(10);
  const auto services = catalogue();
  for (int i = 0; i < 50; ++i) {
    PlanNode tree = random_tree(rng, services, 20);
    mutate(tree, rng, services, 1.0, 25);
    EXPECT_LE(tree.size(), 25u);
    EXPECT_EQ(check_structure(tree), "");
  }
}

TEST(Mutation, PaperRateMutatesRarely) {
  util::Rng rng(11);
  const auto services = catalogue();
  int changed = 0;
  for (int i = 0; i < 200; ++i) {
    PlanNode tree = random_tree(rng, services, 20);
    if (mutate(tree, rng, services, 0.001, 40)) ++changed;
  }
  // ~1% of trees (20 nodes x 0.001) should mutate; allow generous slack.
  EXPECT_LT(changed, 20);
}

TEST(Selection, TournamentPrefersFitter) {
  util::Rng rng(12);
  std::vector<Fitness> fitnesses(10);
  for (std::size_t i = 0; i < fitnesses.size(); ++i)
    fitnesses[i].overall = static_cast<double>(i) / 10.0;
  const auto chosen = select(fitnesses, 2000, SelectionScheme::Tournament, rng);
  ASSERT_EQ(chosen.size(), 2000u);
  double mean = 0;
  for (const auto index : chosen) mean += fitnesses[index].overall;
  mean /= 2000.0;
  // Binary tournament expectation over uniform [0,0.9] ranks is ~0.6.
  EXPECT_GT(mean, 0.5);
}

TEST(Selection, RoulettePrefersFitter) {
  util::Rng rng(13);
  std::vector<Fitness> fitnesses(2);
  fitnesses[0].overall = 0.1;
  fitnesses[1].overall = 0.9;
  const auto chosen = select(fitnesses, 2000, SelectionScheme::Roulette, rng);
  std::size_t second = 0;
  for (const auto index : chosen) {
    if (index == 1) ++second;
  }
  EXPECT_NEAR(static_cast<double>(second) / 2000.0, 0.9, 0.05);
}

TEST(Selection, HandlesEmptyAndZeroFitness) {
  util::Rng rng(14);
  EXPECT_TRUE(select({}, 5, SelectionScheme::Tournament, rng).empty());
  std::vector<Fitness> zeros(3);
  const auto chosen = select(zeros, 10, SelectionScheme::Roulette, rng);
  EXPECT_EQ(chosen.size(), 10u);
  for (const auto index : chosen) EXPECT_LT(index, 3u);
}

TEST(Selection, TournamentSizeOneIsUniform) {
  util::Rng rng(15);
  std::vector<Fitness> fitnesses(4);
  fitnesses[3].overall = 100.0;
  const auto chosen = select(fitnesses, 4000, SelectionScheme::Tournament, rng, 1);
  std::size_t best = 0;
  for (const auto index : chosen) {
    if (index == 3) ++best;
  }
  EXPECT_NEAR(static_cast<double>(best) / 4000.0, 0.25, 0.05);
}

}  // namespace
}  // namespace ig::planner
