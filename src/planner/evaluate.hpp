// Plan evaluation by simulated execution (Section 3.4.4).
//
// Fitness is the weighted sum of three components:
//
//   fv (Eq. 1)  validity: valid activity executions / total executions,
//               measured by simulating the plan against the world state and
//               checking each activity's preconditions;
//   fg (Eq. 2)  goal satisfaction of the final state(s);
//   fr (Eq. 3)  representation efficiency: 1 − size/Smax;
//   f  (Eq. 4)  wv·fv + wg·fg + wr·fr.
//
// Selective and iterative nodes cause conditional execution: "we need to
// enumerate each possible flow of execution and simulate the execution of a
// plan multiple times". Each selective node multiplies the flow set by its
// branch count; each iterative node is unrolled 1..max_unroll times (the
// paper notes the cycle count "cannot be pre-determined"). Validity counts
// are totalled across flows; goal fitness is averaged across flows (both per
// the paper's text). The flow set is capped at `max_flows` to bound the
// combinatorics of adversarially nested plans; the cap is recorded in the
// result so harnesses can report truncation.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "planner/plan_tree.hpp"
#include "planner/problem.hpp"

namespace ig::planner {

/// Weights and bounds of the fitness function (Table 1's parameters).
struct EvaluationConfig {
  double wv = 0.2;  ///< validity weight
  double wg = 0.5;  ///< goal weight
  double wr = 0.3;  ///< representation-efficiency weight (wv+wg+wr = 1)
  std::size_t smax = 40;
  std::size_t max_unroll = 2;   ///< iterative nodes simulate 1..max_unroll passes
  std::size_t max_flows = 64;   ///< cap on enumerated execution flows
  /// Concurrent children "can be executed ... in any order"; the simulator
  /// checks this many serializations (1 = left-to-right only, 2 adds the
  /// reverse order, which catches order-dependent children without paying
  /// for all n! interleavings).
  std::size_t concurrent_orders = 2;
  /// Remember the fitness of every structurally distinct plan and serve
  /// repeats (elites, post-selection clones) from the memo instead of
  /// re-simulating. Evaluation is a pure function of the plan, so the memo
  /// never changes results — disable only to measure raw simulation cost.
  bool memoize = true;
};

struct Fitness {
  double overall = 0.0;   ///< f  (Eq. 4)
  double validity = 0.0;  ///< fv (Eq. 1)
  double goal = 0.0;      ///< fg (Eq. 2)
  double representation = 0.0;  ///< fr (Eq. 3)
  std::size_t size = 0;         ///< plan tree node count
  std::size_t flows = 0;        ///< execution flows enumerated
  bool flows_truncated = false; ///< true when max_flows clipped enumeration

  /// Fitness-comparable ordering.
  bool operator<(const Fitness& other) const noexcept { return overall < other.overall; }
};

/// Immutable output items, cached per (service, occurrence index): the k-th
/// execution of a service always produces the same specification, so flows
/// share one allocation instead of rebuilding property maps. Occurrence
/// indices keep the items *distinct* (binding never reuses one item for two
/// formals, and a service like PSF genuinely needs two different 3-D
/// models).
class OutputCache {
 public:
  const std::vector<std::shared_ptr<const wfl::DataSpec>>& get(const wfl::ServiceType& service,
                                                               std::size_t occurrence);

 private:
  std::map<std::string, std::vector<std::vector<std::shared_ptr<const wfl::DataSpec>>>>
      cache_;
};

/// Evaluates plans against one planning problem.
///
/// Thread-safe for concurrent `evaluate` calls as long as each concurrently
/// executing caller passes a distinct `worker` id below the `workers` count
/// given at construction: every worker owns a private OutputCache (no
/// locking on the simulation path), the fitness memo is sharded behind
/// per-shard mutexes, and the counters are atomic. Fitness is a pure
/// function of the plan, so the memo is transparent: results are identical
/// with it on, off, or raced (two workers simulating the same plan
/// concurrently both compute — and store — the same value).
class PlanEvaluator {
 public:
  explicit PlanEvaluator(const PlanningProblem& problem, EvaluationConfig config = {},
                         std::size_t workers = 1);

  const EvaluationConfig& config() const noexcept { return config_; }
  const PlanningProblem& problem() const noexcept { return *problem_; }
  std::size_t workers() const noexcept { return caches_.size(); }

  /// Evaluates on behalf of `worker` (must be < workers()).
  Fitness evaluate(const PlanNode& plan, std::size_t worker) const;
  /// Single-threaded convenience: evaluates as worker 0.
  Fitness evaluate(const PlanNode& plan) const { return evaluate(plan, 0); }

  /// Number of evaluations requested so far, memo hits included (for effort
  /// accounting).
  std::size_t evaluations() const noexcept {
    return evaluations_.load(std::memory_order_relaxed);
  }
  /// Evaluations served from the fitness memo without re-simulating. Under
  /// concurrency this is scheduling-dependent (a plan raced by two workers
  /// counts as two misses), so treat it as advisory.
  std::size_t memo_hits() const noexcept { return memo_hits_.load(std::memory_order_relaxed); }
  /// Evaluations that actually ran the simulator.
  std::size_t simulations() const noexcept { return evaluations() - memo_hits(); }

 private:
  struct MemoShard {
    std::mutex mutex;
    /// hash -> structurally distinct plans with that hash (collision chain).
    std::unordered_map<std::uint64_t, std::vector<std::pair<PlanNode, Fitness>>> entries;
  };
  static constexpr std::size_t kMemoShards = 16;

  Fitness simulate(const PlanNode& plan, std::size_t worker) const;

  const PlanningProblem* problem_;
  EvaluationConfig config_;
  mutable std::atomic<std::size_t> evaluations_{0};
  mutable std::atomic<std::size_t> memo_hits_{0};
  mutable std::vector<std::unique_ptr<OutputCache>> caches_;  ///< one per worker
  mutable std::array<MemoShard, kMemoShards> memo_;
};

}  // namespace ig::planner
