#include "planner/plan_tree.hpp"

#include <algorithm>
#include <stdexcept>

namespace ig::planner {

std::string_view to_string(PlanNode::Kind kind) noexcept {
  switch (kind) {
    case PlanNode::Kind::Terminal: return "Terminal";
    case PlanNode::Kind::Sequential: return "Sequential";
    case PlanNode::Kind::Concurrent: return "Concurrent";
    case PlanNode::Kind::Selective: return "Selective";
    case PlanNode::Kind::Iterative: return "Iterative";
  }
  return "?";
}

PlanNode PlanNode::terminal(std::string service) {
  PlanNode node;
  node.kind = Kind::Terminal;
  node.service = std::move(service);
  return node;
}

PlanNode PlanNode::sequential(std::vector<PlanNode> children) {
  PlanNode node;
  node.kind = Kind::Sequential;
  node.children = std::move(children);
  return node;
}

PlanNode PlanNode::concurrent(std::vector<PlanNode> children) {
  PlanNode node;
  node.kind = Kind::Concurrent;
  node.children = std::move(children);
  return node;
}

PlanNode PlanNode::selective(std::vector<PlanNode> children, std::vector<wfl::Condition> guards) {
  PlanNode node;
  node.kind = Kind::Selective;
  if (guards.empty()) guards.resize(children.size());
  node.children = std::move(children);
  node.guards = std::move(guards);
  return node;
}

PlanNode PlanNode::iterative(std::vector<PlanNode> body, wfl::Condition continue_condition) {
  PlanNode node;
  node.kind = Kind::Iterative;
  node.children = std::move(body);
  node.continue_condition = std::move(continue_condition);
  return node;
}

std::size_t PlanNode::size() const noexcept {
  std::size_t total = 1;
  for (const auto& child : children) total += child.size();
  return total;
}

std::size_t PlanNode::depth() const noexcept {
  std::size_t deepest = 0;
  for (const auto& child : children) deepest = std::max(deepest, child.depth());
  return deepest + 1;
}

std::size_t PlanNode::terminal_count() const noexcept {
  if (is_terminal()) return 1;
  std::size_t total = 0;
  for (const auto& child : children) total += child.terminal_count();
  return total;
}

const PlanNode* PlanNode::find_preorder(std::size_t& index) const noexcept {
  if (index == 0) return this;
  --index;
  for (const auto& child : children) {
    const PlanNode* found = child.find_preorder(index);
    if (found != nullptr) return found;
  }
  return nullptr;
}

PlanNode* PlanNode::find_preorder(std::size_t& index) noexcept {
  if (index == 0) return this;
  --index;
  for (auto& child : children) {
    PlanNode* found = child.find_preorder(index);
    if (found != nullptr) return found;
  }
  return nullptr;
}

const PlanNode& PlanNode::at_preorder(std::size_t index) const {
  std::size_t cursor = index;
  const PlanNode* found = find_preorder(cursor);
  if (found == nullptr)
    throw std::out_of_range("preorder index " + std::to_string(index) + " out of range");
  return *found;
}

PlanNode& PlanNode::at_preorder(std::size_t index) {
  std::size_t cursor = index;
  PlanNode* found = find_preorder(cursor);
  if (found == nullptr)
    throw std::out_of_range("preorder index " + std::to_string(index) + " out of range");
  return *found;
}

void PlanNode::replace_at_preorder(std::size_t index, PlanNode replacement) {
  at_preorder(index) = std::move(replacement);
}

bool PlanNode::operator==(const PlanNode& other) const {
  if (kind != other.kind || service != other.service) return false;
  if (children != other.children) return false;
  if (guards.size() != other.guards.size()) return false;
  for (std::size_t i = 0; i < guards.size(); ++i) {
    if (!(guards[i] == other.guards[i])) return false;
  }
  return continue_condition == other.continue_condition;
}

namespace {

// FNV-1a over bytes, with a 64-bit avalanche finisher for word-sized mixes.
constexpr std::uint64_t kHashSeed = 0xCBF29CE484222325ULL;

constexpr std::uint64_t hash_mix(std::uint64_t h, std::uint64_t word) noexcept {
  h ^= word;
  h *= 0x100000001B3ULL;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 32);
}

std::uint64_t hash_bytes(std::uint64_t h, std::string_view bytes) noexcept {
  for (const char byte : bytes) {
    h ^= static_cast<unsigned char>(byte);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::uint64_t hash_condition(std::uint64_t h, const wfl::Condition& condition) {
  // GP-evolved trees carry trivially-true conditions everywhere; skip the
  // textual rendering (an allocation) for that common case.
  if (condition.is_trivially_true()) return hash_mix(h, 0x7472756555555555ULL);
  return hash_bytes(hash_mix(h, 1), condition.to_string());
}

void render(const PlanNode& node, std::string& out, int depth) {
  out.append(static_cast<std::size_t>(depth) * 2, ' ');
  if (node.is_terminal()) {
    out += node.service;
    out += '\n';
    return;
  }
  out += to_string(node.kind);
  if (node.kind == PlanNode::Kind::Iterative && !node.continue_condition.is_trivially_true())
    out += " [while " + node.continue_condition.to_string() + "]";
  out += '\n';
  for (const auto& child : node.children) render(child, out, depth + 1);
}

}  // namespace

std::string PlanNode::to_tree_string() const {
  std::string out;
  render(*this, out, 0);
  return out;
}

std::uint64_t PlanNode::hash() const noexcept {
  std::uint64_t h = hash_mix(kHashSeed, static_cast<std::uint64_t>(kind) + 1);
  h = hash_bytes(h, service);
  h = hash_mix(h, children.size());
  for (const auto& child : children) h = hash_mix(h, child.hash());
  for (const auto& guard : guards) h = hash_condition(h, guard);
  return hash_condition(h, continue_condition);
}

std::string check_structure(const PlanNode& tree) {
  if (tree.is_terminal()) {
    if (!tree.children.empty()) return "terminal node has children";
    if (tree.service.empty()) return "terminal node names no service";
    return "";
  }
  if (tree.children.empty())
    return std::string(to_string(tree.kind)) + " controller node has no children";
  if (tree.kind == PlanNode::Kind::Selective && tree.guards.size() != tree.children.size())
    return "selective node has " + std::to_string(tree.guards.size()) + " guards for " +
           std::to_string(tree.children.size()) + " children";
  for (const auto& child : tree.children) {
    std::string issue = check_structure(child);
    if (!issue.empty()) return issue;
  }
  return "";
}

}  // namespace ig::planner
