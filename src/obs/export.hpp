// Serializers for the observability layer, plus the format checks CI runs
// against their output.
//
// Three formats:
//  - Prometheus text exposition (registry snapshot -> scrape page),
//  - Chrome trace_event JSON (spans -> chrome://tracing / Perfetto),
//  - JSON Lines (registry snapshot -> one object per metric, for the
//    BENCH_*.json pipeline).
//
// The validators are deliberately strict syntax checkers — not schema
// interpreters — so a malformed export fails the producing binary (and the
// CI artifact job) instead of surfacing as an unloadable trace later.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace ig::obs {

/// Prometheus text exposition format (one `# TYPE` comment per metric name,
/// histogram rendered as cumulative `_bucket{le=...}` + `_sum` + `_count`).
/// Non-finite gauge values are skipped — an absent point is distinguishable
/// from a real zero, a NaN sample is not.
std::string to_prometheus(const RegistrySnapshot& snapshot);

/// Chrome trace_event JSON: {"traceEvents": [...]} with one complete ("X")
/// event per closed span, microsecond timestamps scaled from sim seconds,
/// one tid row per case. Span links and tags ride in "args".
std::string to_chrome_trace(const std::vector<Span>& spans);

/// JSON Lines: one self-contained object per metric, `{"source": source,
/// "metric": ..., "kind": ..., ...}`. Histograms carry count/sum/p50/p99.
/// Non-finite values are emitted as null.
std::string to_json_lines(const RegistrySnapshot& snapshot, const std::string& source);

/// Strict JSON syntax check (RFC 8259 grammar; no extensions). On failure
/// returns false and, when `error` is non-null, a message with the offset.
bool validate_json(const std::string& text, std::string* error = nullptr);

/// Prometheus text format check: every line is a comment or
/// `name{labels} value` with a valid metric name and a finite value.
bool validate_prometheus(const std::string& text, std::string* error = nullptr);

}  // namespace ig::obs
