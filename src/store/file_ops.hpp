// The seam under all store I/O.
//
// Segment, WriteAheadLog and StorageEngine never call open/pwrite/fsync/
// mmap/rename directly; they go through a FileOps, whose default
// implementation (posix_file_ops()) is a thin forwarding shim over the real
// syscalls. That indirection is what makes disk failure *testable*:
// store::FaultFs (fault_fs.hpp) wraps any FileOps and injects EIO, ENOSPC,
// short writes, fsync failures and a simulated power cut — deterministically,
// from a seed — so every failure path in the store has a test driving it
// rather than a comment hoping about it.
//
// Error reporting follows POSIX: each call returns the syscall's value
// (-1 / MAP_FAILED on failure) and leaves errno set. Nothing here throws.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <string>

namespace ig::store {

class FileOps {
 public:
  virtual ~FileOps() = default;

  /// open(2); the path is part of the signature (not just the fd) so a
  /// fault layer can match rules by file name.
  virtual int open(const std::string& path, int flags, int mode) = 0;
  virtual int close(int fd) = 0;
  virtual ssize_t pread(int fd, void* buf, std::size_t count, off_t offset) = 0;
  virtual ssize_t pwrite(int fd, const void* buf, std::size_t count, off_t offset) = 0;
  virtual int fsync(int fd) = 0;
  virtual int ftruncate(int fd, off_t length) = 0;
  /// File size via fstat(2); -1 on failure.
  virtual off_t size(int fd) = 0;

  /// Read-write MAP_SHARED mapping of [0, length). Returns MAP_FAILED on
  /// error. The mapping must outlive the fd (callers close it right after).
  virtual void* mmap(int fd, std::size_t length) = 0;
  /// `sync` true = MS_SYNC (durability point), false = MS_ASYNC
  /// (best-effort writeback, e.g. at close).
  virtual int msync(void* addr, std::size_t length, bool sync) = 0;
  virtual int munmap(void* addr, std::size_t length) = 0;

  virtual int rename(const std::string& from, const std::string& to) = 0;
  virtual int unlink(const std::string& path) = 0;
  virtual int mkdir(const std::string& path, int mode) = 0;
};

/// The process-wide default: every call forwards to the identically named
/// syscall, nothing else.
FileOps& posix_file_ops();

}  // namespace ig::store
