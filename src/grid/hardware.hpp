// Hardware and software characteristics of grid resources.
//
// Mirrors the Hardware and Software frames of Figure 12. The matchmaking
// discussion in Section 1 motivates the fields: "if a parallel computation
// involves fine grain parallel computations, then a PC cluster with a switch
// with high latency and low bandwidth will be a poor choice".
#pragma once

#include <string>
#include <vector>

namespace ig::grid {

/// Hardware frame: the properties brokerage and matchmaking reason about.
struct HardwareSpec {
  std::string type = "cluster";  ///< "cluster", "smp", "workstation", ...
  double speed = 1.0;            ///< abstract operations per virtual second per node
  double memory_gb = 4.0;        ///< main memory per node
  double disk_gb = 100.0;        ///< secondary storage
  double bandwidth_mbps = 100.0; ///< interconnect bandwidth
  double latency_ms = 1.0;       ///< interconnect latency
  std::string manufacturer;
  std::string model;

  std::string to_display_string() const;
};

/// Software frame: one installed package.
struct SoftwareSpec {
  std::string name;
  std::string type;  ///< "compiler", "mpi", "application", ...
  std::string manufacturer;
  std::string version;
  std::string distribution;
};

/// True when `installed` satisfies a requirement on name (and, when the
/// requirement specifies one, version).
bool satisfies(const SoftwareSpec& installed, const SoftwareSpec& required);

/// True when any element of `installed` satisfies `required`.
bool has_software(const std::vector<SoftwareSpec>& installed, const SoftwareSpec& required);

}  // namespace ig::grid
