#include "grid/grid.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/strings.hpp"

namespace ig::grid {

GridNode& Grid::add_node(std::string id, std::string name, std::string domain,
                         HardwareSpec hardware) {
  if (find_node(id) != nullptr)
    throw std::invalid_argument("duplicate node id '" + id + "'");
  nodes_.push_back(
      std::make_unique<GridNode>(std::move(id), std::move(name), std::move(domain),
                                 std::move(hardware)));
  return *nodes_.back();
}

ApplicationContainer& Grid::add_container(std::string id, std::string node_id) {
  if (find_container(id) != nullptr)
    throw std::invalid_argument("duplicate container id '" + id + "'");
  if (find_node(node_id) == nullptr)
    throw std::invalid_argument("container '" + id + "' references unknown node '" + node_id +
                                "'");
  containers_.push_back(std::make_unique<ApplicationContainer>(std::move(id), std::move(node_id)));
  return *containers_.back();
}

GridNode* Grid::find_node(std::string_view id) noexcept {
  for (auto& node : nodes_) {
    if (node->id() == id) return node.get();
  }
  return nullptr;
}

const GridNode* Grid::find_node(std::string_view id) const noexcept {
  for (const auto& node : nodes_) {
    if (node->id() == id) return node.get();
  }
  return nullptr;
}

ApplicationContainer* Grid::find_container(std::string_view id) noexcept {
  for (auto& container : containers_) {
    if (container->id() == id) return container.get();
  }
  return nullptr;
}

const ApplicationContainer* Grid::find_container(std::string_view id) const noexcept {
  for (const auto& container : containers_) {
    if (container->id() == id) return container.get();
  }
  return nullptr;
}

std::vector<const ApplicationContainer*> Grid::containers_hosting(
    std::string_view service_name) const {
  std::vector<const ApplicationContainer*> out;
  for (const auto& container : containers_) {
    if (!container->hosts(service_name) || !container->available()) continue;
    const GridNode* node = find_node(container->node_id());
    if (node == nullptr || !node->is_up()) continue;
    out.push_back(container.get());
  }
  return out;
}

std::vector<const ApplicationContainer*> Grid::containers_advertising(
    std::string_view service_name) const {
  std::vector<const ApplicationContainer*> out;
  for (const auto& container : containers_) {
    if (container->hosts(service_name)) out.push_back(container.get());
  }
  return out;
}

std::vector<std::string> Grid::domains() const {
  std::set<std::string> unique;
  for (const auto& node : nodes_) unique.insert(node->domain());
  return {unique.begin(), unique.end()};
}

ExecutionResult Grid::execute(Simulation& sim, FailureInjector& injector,
                              const wfl::ServiceType& service, const std::string& container_id,
                              double input_size_mb, const std::string& data_domain) {
  ExecutionResult result;
  ApplicationContainer* container = find_container(container_id);
  if (container == nullptr) {
    result.failure_reason = "unknown container '" + container_id + "'";
    return result;
  }
  if (!container->available()) {
    container->record_dispatch(/*failed=*/true);
    result.failure_reason = "container unavailable";
    return result;
  }
  GridNode* node = find_node(container->node_id());
  if (node == nullptr || !node->is_up()) {
    container->record_dispatch(/*failed=*/true);
    result.failure_reason = "node down";
    return result;
  }

  // Combined failure probability: container runtime + node unreliability.
  const double p_fail =
      1.0 - (1.0 - container->failure_probability()) * node->reliability();
  if (injector.draw_failure(p_fail)) {
    container->record_dispatch(/*failed=*/true);
    result.failure_reason = "execution failure";
    // A failed attempt still wastes some time on the node's queue.
    result.completion_time = sim.now() + node->execution_time(service.base_work() * 0.25);
    return result;
  }

  const SimTime staging = network_.transfer_time(data_domain, node->domain(), input_size_mb);
  const SimTime completion = node->enqueue_work(sim.now() + staging, service.base_work());
  container->record_dispatch(/*failed=*/false);
  result.success = true;
  result.completion_time = completion;
  return result;
}

void Grid::set_container_available(std::string_view container_id, bool available) {
  ApplicationContainer* container = find_container(container_id);
  if (container != nullptr) container->set_available(available);
}

void Grid::set_node_state(std::string_view node_id, NodeState state) {
  GridNode* node = find_node(node_id);
  if (node != nullptr) node->set_state(state);
}

std::string Grid::to_display_string() const {
  std::string out = "Grid: " + std::to_string(nodes_.size()) + " nodes, " +
                    std::to_string(containers_.size()) + " containers\n";
  for (const auto& node : nodes_) out += "  " + node->to_display_string() + "\n";
  for (const auto& container : containers_) {
    out += "  " + container->id() + " on " + container->node_id() + " hosts {" +
           util::join(container->hosted_services(), ", ") + "}" +
           (container->available() ? "" : " UNAVAILABLE") + "\n";
  }
  return out;
}

void build_topology(Grid& grid, const TopologyParams& params, util::Rng& rng) {
  int container_counter = 1;
  std::set<std::string> hosted_somewhere;
  for (int d = 0; d < params.domains; ++d) {
    const std::string domain = "domain" + std::to_string(d + 1);
    for (int n = 0; n < params.nodes_per_domain; ++n) {
      HardwareSpec hardware;
      hardware.type = (n % 3 == 0) ? "cluster" : (n % 3 == 1) ? "smp" : "workstation";
      hardware.speed = rng.next_double(params.min_speed, params.max_speed);
      hardware.memory_gb = static_cast<double>(1 << rng.next_int(1, 5));
      hardware.bandwidth_mbps = rng.next_double(10.0, 1000.0);
      hardware.latency_ms = rng.next_double(0.05, 5.0);
      const std::string node_id =
          "node-" + std::to_string(d + 1) + "-" + std::to_string(n + 1);
      GridNode& node = grid.add_node(node_id, "host " + node_id, domain, hardware);
      node.set_node_count(hardware.type == "cluster" ? static_cast<int>(rng.next_int(4, 32))
                                                     : 1);
      node.set_reliability(rng.next_double(0.95, 1.0));
      for (int c = 0; c < params.containers_per_node; ++c) {
        auto& container =
            grid.add_container("ac-" + std::to_string(container_counter++), node_id);
        container.set_failure_probability(params.container_failure_probability);
        // Spot-market heterogeneity: faster or more reliable sites charge
        // more; prices vary around 1.0.
        container.set_price_factor(rng.next_double(0.5, 2.0));
        if (params.service_names.empty()) continue;
        // Draw a random subset of services for this container.
        const int count = std::min<int>(params.services_per_container,
                                        static_cast<int>(params.service_names.size()));
        std::set<std::string> chosen;
        while (static_cast<int>(chosen.size()) < count) {
          chosen.insert(params.service_names[rng.next_below(params.service_names.size())]);
        }
        for (const auto& service : chosen) {
          container.host_service(service);
          hosted_somewhere.insert(service);
        }
      }
    }
  }
  // Guarantee coverage: every service type must have at least one host.
  for (const auto& service : params.service_names) {
    if (hosted_somewhere.count(service) > 0) continue;
    if (grid.containers().empty()) break;
    const auto index = rng.next_below(grid.containers().size());
    grid.find_container(grid.containers()[index]->id())->host_service(service);
  }
  // Inter-domain WAN links are slower than the intra-domain default.
  const auto domains = grid.domains();
  for (std::size_t i = 0; i < domains.size(); ++i) {
    for (std::size_t j = i + 1; j < domains.size(); ++j) {
      LinkSpec link;
      link.latency_s = rng.next_double(0.02, 0.2);
      link.bandwidth_mb_s = rng.next_double(5.0, 50.0);
      grid.network().set_link(domains[i], domains[j], link);
    }
  }
}

}  // namespace ig::grid
