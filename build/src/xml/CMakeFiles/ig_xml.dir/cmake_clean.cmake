file(REMOVE_RECURSE
  "CMakeFiles/ig_xml.dir/xml.cpp.o"
  "CMakeFiles/ig_xml.dir/xml.cpp.o.d"
  "libig_xml.a"
  "libig_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
