#include "services/request_tracker.hpp"

#include <algorithm>
#include <stdexcept>

namespace ig::svc {

RequestTracker::~RequestTracker() {
  // Deadline timers capture `this`; cancel them so a tracker destroyed
  // before the calendar drains leaves no dangling callbacks behind.
  if (sim_ == nullptr) return;
  for (auto& [conversation_id, pending] : pending_) {
    if (pending.timer != 0) sim_->cancel(pending.timer);
  }
}

void RequestTracker::bind(grid::Simulation& sim, SendFn send, DeadLetterFn on_dead_letter) {
  sim_ = &sim;
  send_ = std::move(send);
  on_dead_letter_ = std::move(on_dead_letter);
}

void RequestTracker::track(agent::AclMessage message, const RetryPolicy& policy) {
  if (sim_ == nullptr || !send_)
    throw std::logic_error("RequestTracker::track before bind()");
  if (message.conversation_id.empty())
    throw std::invalid_argument("RequestTracker: message has no conversation id");

  abandon(message.conversation_id);  // re-tracking replaces the old entry

  const std::string conversation_id = message.conversation_id;
  Pending pending;
  pending.message = message;
  pending.policy = policy;
  pending.first_sent = sim_->now();
  pending.rng = util::Rng(util::derive_stream(seed_, next_sequence_++));
  pending.timer = sim_->schedule(
      std::max<grid::SimTime>(policy.timeout, 0.001),
      [this, conversation_id]() { on_deadline(conversation_id); });
  pending_.emplace(conversation_id, std::move(pending));
  send_(std::move(message));
}

bool RequestTracker::settle(const std::string& conversation_id) {
  auto it = pending_.find(conversation_id);
  if (it == pending_.end()) return false;
  if (it->second.timer != 0) sim_->cancel(it->second.timer);
  pending_.erase(it);
  return true;
}

bool RequestTracker::abandon(const std::string& conversation_id) {
  return settle(conversation_id);
}

std::size_t RequestTracker::abandon_prefix(const std::string& prefix) {
  std::size_t cancelled = 0;
  for (auto it = pending_.lower_bound(prefix); it != pending_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (it->second.timer != 0) sim_->cancel(it->second.timer);
    it = pending_.erase(it);
    ++cancelled;
  }
  return cancelled;
}

void RequestTracker::on_deadline(const std::string& conversation_id) {
  auto it = pending_.find(conversation_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  pending.timer = 0;
  timeouts_total_.fetch_add(1, std::memory_order_relaxed);

  if (pending.attempts >= pending.policy.max_attempts) {
    DeadLetter letter;
    letter.conversation_id = conversation_id;
    letter.receiver = pending.message.receiver;
    letter.protocol = pending.message.protocol;
    letter.attempts = pending.attempts;
    letter.first_sent = pending.first_sent;
    letter.abandoned_at = sim_->now();
    letter.reason = "no reply after " + std::to_string(pending.attempts) + " attempt(s)";
    pending_.erase(it);
    dead_letters_total_.fetch_add(1, std::memory_order_relaxed);
    dead_letters_.push_back(letter);
    if (max_dead_letters_ > 0 && dead_letters_.size() > max_dead_letters_)
      dead_letters_.erase(dead_letters_.begin());
    if (on_dead_letter_) on_dead_letter_(letter);
    return;
  }

  ++pending.attempts;
  retries_total_.fetch_add(1, std::memory_order_relaxed);
  // Decorrelated jitter: sleep ~ U(base, 3 * previous sleep), clamped. The
  // spread keeps a herd of timed-out requests from resending in lockstep.
  const grid::SimTime previous =
      pending.prev_sleep > 0.0 ? pending.prev_sleep : pending.policy.backoff_base;
  const grid::SimTime sleep =
      std::min(pending.policy.backoff_cap,
               pending.rng.next_double(pending.policy.backoff_base, previous * 3.0));
  pending.prev_sleep = sleep;
  pending.timer =
      sim_->schedule(sleep, [this, conversation_id]() { resend(conversation_id); });
}

void RequestTracker::resend(const std::string& conversation_id) {
  auto it = pending_.find(conversation_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  pending.timer =
      sim_->schedule(std::max<grid::SimTime>(pending.policy.timeout, 0.001),
                     [this, conversation_id]() { on_deadline(conversation_id); });
  send_(pending.message);
}

}  // namespace ig::svc
