# Empty dependencies file for virolab_test.
# This may be replaced when dependencies are built.
