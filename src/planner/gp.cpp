#include "planner/gp.hpp"

#include <algorithm>
#include <optional>

#include "util/thread_pool.hpp"

namespace ig::planner {

namespace {

/// Phase tags for util::derive_stream — every random decision in a run is
/// addressed by (seed, generation, index, phase), never by a shared stream,
/// so the work can be scheduled on any number of threads without changing
/// which numbers any individual draws. The values are arbitrary distinct
/// labels; changing them re-randomizes every run (like changing the seed).
enum StreamPhase : std::uint64_t {
  kInitStream = 0x11,
  kSelectStream = 0x12,
  kCrossoverStream = 0x13,
  kMutationStream = 0x14,
};

util::Rng stream_rng(const GpConfig& config, std::uint64_t generation, std::uint64_t index,
                     StreamPhase phase) {
  return util::Rng(util::derive_stream(config.seed, generation, index, phase));
}

}  // namespace

GpResult run_gp(const PlanningProblem& problem, const GpConfig& config) {
  const std::size_t threads =
      config.threads == 0 ? sched::JobSystem::hardware_threads() : config.threads;
  PlanEvaluator evaluator(problem, config.evaluation, threads);
  // The work-stealing job system is the production scheduler; the legacy
  // pool stays constructible so the parallel bench can A/B them. With one
  // thread everything runs inline on the caller (worker id 0).
  std::optional<sched::JobSystem> jobs;
  std::optional<util::ThreadPool> pool;
  if (threads > 1) {
    if (config.scheduler == GpScheduler::LegacyPool)
      pool.emplace(threads);
    else
      jobs.emplace(threads);
  }
  const auto for_each = [&](std::size_t count, auto&& fn) {
    if (jobs)
      jobs->parallel_for(count, fn);
    else if (pool)
      pool->parallel_for(count, fn);
    else
      for (std::size_t index = 0; index < count; ++index) fn(index, 0);
  };

  // 1. Initialize population (stream per individual).
  std::vector<PlanNode> population(config.population_size);
  for_each(population.size(), [&](std::size_t i, std::size_t) {
    util::Rng rng = stream_rng(config, 0, i, kInitStream);
    population[i] =
        random_tree(rng, problem.catalogue, config.evaluation.smax, config.init_style);
  });

  GpResult result;
  result.threads_used = threads;
  bool have_best = false;

  std::vector<Fitness> fitnesses(population.size());
  for (std::size_t generation = 0; generation <= config.generations; ++generation) {
    // 2a. Evaluate — the hot loop; individuals are independent, results land
    // by index, and the evaluator is thread-safe per worker.
    for_each(population.size(), [&](std::size_t i, std::size_t worker) {
      fitnesses[i] = evaluator.evaluate(population[i], worker);
    });

    // Track the best-so-far individual (serial reduction in index order, so
    // floating-point sums do not depend on scheduling).
    std::size_t generation_best = 0;
    double fitness_sum = 0.0;
    for (std::size_t i = 0; i < population.size(); ++i) {
      fitness_sum += fitnesses[i].overall;
      if (fitnesses[i].overall > fitnesses[generation_best].overall) generation_best = i;
    }
    if (!have_best || fitnesses[generation_best].overall > result.best_fitness.overall) {
      result.best_plan = population[generation_best];
      result.best_fitness = fitnesses[generation_best];
      have_best = true;
    }

    GenerationStats stats;
    stats.generation = generation;
    stats.best_fitness = fitnesses[generation_best].overall;
    stats.mean_fitness =
        population.empty() ? 0.0 : fitness_sum / static_cast<double>(population.size());
    stats.best_validity = fitnesses[generation_best].validity;
    stats.best_goal = fitnesses[generation_best].goal;
    stats.best_size = fitnesses[generation_best].size;
    result.history.push_back(stats);

    if (config.target_fitness.has_value() &&
        result.best_fitness.overall >= *config.target_fitness)
      break;
    if (generation == config.generations) break;  // final evaluation only

    // 2b. Select (one stream per generation; cheap, stays serial).
    util::Rng select_rng = stream_rng(config, generation, 0, kSelectStream);
    const std::vector<std::size_t> selected = select(
        fitnesses, population.size(), config.selection, select_rng, config.tournament_size);
    std::vector<PlanNode> next;
    next.reserve(population.size());
    for (const std::size_t index : selected) next.push_back(population[index]);

    // Elitism: overwrite the head of the new population with the best-so-far.
    for (std::size_t e = 0; e < config.elitism && e < next.size(); ++e)
      next[e] = result.best_plan;

    // 2c. Crossover over consecutive pairs (elites excluded); each pair is
    // independent and draws from the stream of its left index.
    const std::size_t first_variable = std::min(config.elitism, next.size());
    const std::size_t pair_count =
        next.size() > first_variable ? (next.size() - first_variable) / 2 : 0;
    for_each(pair_count, [&](std::size_t pair, std::size_t) {
      const std::size_t i = first_variable + 2 * pair;
      util::Rng rng = stream_rng(config, generation, i, kCrossoverStream);
      CrossoverResult crossed =
          crossover(next[i], next[i + 1], rng, config.crossover_rate, config.evaluation.smax);
      if (crossed.applied) {
        next[i] = std::move(crossed.first);
        next[i + 1] = std::move(crossed.second);
      }
    });

    // 2d. Mutate (elites excluded; stream per individual).
    for_each(next.size() - first_variable, [&](std::size_t offset, std::size_t) {
      const std::size_t i = first_variable + offset;
      util::Rng rng = stream_rng(config, generation, i, kMutationStream);
      mutate(next[i], rng, problem.catalogue, config.mutation_rate, config.evaluation.smax,
             config.init_style);
    });

    population = std::move(next);
  }

  result.evaluations = evaluator.evaluations();
  result.memo_hits = evaluator.memo_hits();
  if (jobs) result.scheduler_stats = jobs->stats();
  return result;
}

}  // namespace ig::planner
