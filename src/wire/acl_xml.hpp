// XML serialization of AclMessage — the baseline the binary codec replaces.
//
// This is how the single-process tier would naturally externalize a message
// (the middleware is XML-everywhere), kept as the comparison point for
// bench_wire_throughput and as the interop form for XML-speaking peers.
// Every field travels as an attribute: our parser returns attribute values
// verbatim (no whitespace stripping), so tabs/newlines round-trip — but
// XML 1.0 has no representation for the remaining C0 control characters,
// so a message carrying them is *rejected with a reason naming the field*
// (std::invalid_argument) instead of being silently corrupted. Arbitrary
// binary payloads belong on the binary codec, which round-trips any bytes.
#pragma once

#include <string>
#include <string_view>

#include "agent/message.hpp"

namespace ig::wire {

/// Serializes to an <acl .../> document. Throws std::invalid_argument when
/// a field contains bytes XML 1.0 cannot represent (control characters
/// other than tab/LF/CR), naming the offending field.
std::string acl_to_xml(const agent::AclMessage& message);

/// Parses acl_to_xml's output. Throws xml::ParseError on malformed input
/// (including an unknown performative).
agent::AclMessage acl_from_xml(std::string_view text);

}  // namespace ig::wire
