// Inter-domain network model.
//
// Task migration "may require additional data transformations ... before
// and/or after migrating a task"; moving input data between administrative
// domains costs latency + size/bandwidth, possibly inflated by a
// transformation factor (compression/encryption/byte-swapping).
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "grid/sim.hpp"

namespace ig::grid {

/// Data transformations required when crossing a link ("transformations
/// such as data compression/decompression, encryption/decryption and byte
/// swapping are likely to be necessary"). Each transformation scales the
/// effective payload and/or adds fixed processing time.
struct TransformSpec {
  bool compress = false;     ///< payload shrinks, but CPU time is spent
  bool encrypt = false;      ///< payload grows slightly, CPU time is spent
  bool byte_swap = false;    ///< endianness conversion, CPU time only
  double compress_ratio = 0.5;   ///< compressed size / original size
  double encrypt_overhead = 1.05;///< encrypted size / input size
  double cpu_mb_s = 200.0;       ///< transformation throughput (MB/s)

  /// Effective on-wire size of `size_mb` after the enabled transformations.
  double effective_size(double size_mb) const noexcept;
  /// CPU seconds spent transforming `size_mb` at both endpoints.
  double processing_time(double size_mb) const noexcept;
  bool any() const noexcept { return compress || encrypt || byte_swap; }
};

/// Link characteristics between two administrative domains.
struct LinkSpec {
  double latency_s = 0.01;        ///< one-way latency in virtual seconds
  double bandwidth_mb_s = 100.0;  ///< megabytes per virtual second
  TransformSpec transform;        ///< required migrations transformations
};

/// Symmetric domain-to-domain link table with a default link.
class NetworkModel {
 public:
  /// The link used for domain pairs without an explicit entry.
  void set_default_link(LinkSpec link) noexcept { default_link_ = link; }
  const LinkSpec& default_link() const noexcept { return default_link_; }

  /// Defines the link between two domains (order-insensitive).
  void set_link(std::string_view a, std::string_view b, LinkSpec link);
  const LinkSpec& link(std::string_view a, std::string_view b) const;

  /// Intra-domain transfers use a fast local link.
  void set_local_link(LinkSpec link) noexcept { local_link_ = link; }

  /// Time to move `size_mb` megabytes from domain `a` to domain `b`:
  /// latency + transformed-size/bandwidth + transformation CPU time.
  /// `transform_factor` > 1 models additional caller-side inflation.
  SimTime transfer_time(std::string_view a, std::string_view b, double size_mb,
                        double transform_factor = 1.0) const;

  /// One-way message latency between two domains.
  SimTime message_latency(std::string_view a, std::string_view b) const;

 private:
  static std::pair<std::string, std::string> key(std::string_view a, std::string_view b);

  LinkSpec default_link_{};
  LinkSpec local_link_{0.0005, 1000.0};
  std::map<std::pair<std::string, std::string>, LinkSpec> links_;
};

}  // namespace ig::grid
