// Durable store throughput and recovery cost (DESIGN.md §11, EXPERIMENTS A19).
//
// Two sweeps over the mmap-backed WAL:
//   * append throughput per SyncMode — kNone (no fsync), kCommit with the
//     whole batch under one commit() (the group-commit sweet spot), kCommit
//     with a commit() per record (worst case), and kAlways;
//   * cold-start recovery time as the journal grows, with and without a
//     snapshot bounding the replay.
//
// Appends one JSON Lines record per point to BENCH_store.json.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "store/error.hpp"
#include "store/fault_fs.hpp"
#include "store/storage_engine.hpp"
#include "util/stopwatch.hpp"

using namespace ig;

namespace {

constexpr const char* kJsonPath = "BENCH_store.json";
constexpr std::size_t kPayloadBytes = 128;

std::string bench_dir(const char* tag) {
  static std::uint64_t counter = 0;
  return "bench_store_data/" + std::string(tag) + "-" + std::to_string(counter++);
}

void wipe(const std::string& dir) { std::system(("rm -rf '" + dir + "'").c_str()); }

std::string make_payload(std::mt19937_64& rng) {
  std::string payload(kPayloadBytes, '\0');
  for (char& c : payload) c = static_cast<char>('a' + rng() % 26);
  return payload;
}

struct AppendPoint {
  const char* label;
  store::SyncMode sync;
  bool commit_each;
};

void run_append_sweep(std::size_t records) {
  std::printf("append throughput (%zu records x %zu B payload)\n", records, kPayloadBytes);
  std::printf("  %-18s %12s %12s %10s\n", "mode", "appends/s", "MB/s", "fsyncs");
  const AppendPoint points[] = {
      {"none", store::SyncMode::kNone, false},
      {"commit-batched", store::SyncMode::kCommit, false},
      {"commit-each", store::SyncMode::kCommit, true},
      {"always", store::SyncMode::kAlways, false},
  };
  for (const AppendPoint& point : points) {
    const std::string dir = bench_dir(point.label);
    wipe(dir);
    store::Options options;
    options.data_dir = dir;
    options.snapshot_interval = 0;  // measure the raw WAL, not snapshotting
    options.sync = point.sync;
    std::mt19937_64 rng(2004);
    util::Stopwatch watch;
    {
      store::StorageEngine engine(options);
      for (std::size_t i = 0; i < records; ++i) {
        engine.append_event("bench", make_payload(rng));
        if (point.commit_each) engine.commit();
      }
      engine.commit();
      const double seconds = watch.elapsed_seconds();
      const store::StoreStats stats = engine.stats();
      const double per_second = static_cast<double>(records) / seconds;
      const double mb_per_second =
          static_cast<double>(stats.wal.bytes) / seconds / (1024.0 * 1024.0);
      std::printf("  %-18s %12.0f %12.2f %10llu\n", point.label, per_second, mb_per_second,
                  static_cast<unsigned long long>(stats.wal.fsyncs));
      bench::JsonRecord record("bench_store_throughput");
      record.add("sweep", std::string("append"));
      record.add("mode", std::string(point.label));
      record.add("records", records);
      record.add("payload_bytes", kPayloadBytes);
      record.add("appends_per_second", per_second);
      record.add("mb_per_second", mb_per_second);
      record.add("fsyncs", static_cast<std::size_t>(stats.wal.fsyncs));
      record.add("group_commits", static_cast<std::size_t>(stats.wal.group_commits));
      record.append_to(kJsonPath);
    }
    wipe(dir);
  }
}

void run_group_window_sweep(std::size_t records) {
  // Satellite measurement: sequential per-thread commits (the durable
  // engine's shard pattern) with and without the commit-leader linger
  // window. The interesting column is commits/fsync — the window turns
  // one-barrier-per-commit into one barrier per window.
  constexpr std::size_t kThreads = 4;
  std::printf("\ngroup-commit window (%zu threads, commit per record)\n", kThreads);
  std::printf("  %-12s %12s %10s %14s %14s\n", "window_us", "appends/s", "fsyncs",
              "group_commits", "commits/fsync");
  for (const std::uint32_t window_us : {0u, 200u, 2000u}) {
    const std::string dir = bench_dir("window");
    wipe(dir);
    store::Options options;
    options.data_dir = dir;
    options.snapshot_interval = 0;
    options.sync = store::SyncMode::kCommit;
    options.group_window_us = window_us;
    util::Stopwatch watch;
    std::uint64_t fsyncs = 0;
    std::uint64_t group_commits = 0;
    double seconds = 0.0;
    {
      store::StorageEngine engine(options);
      std::vector<std::thread> threads;
      const std::size_t per_thread = records / kThreads;
      for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&engine, per_thread, t] {
          std::mt19937_64 rng(2004 + t);
          for (std::size_t i = 0; i < per_thread; ++i) {
            engine.append_event("bench", make_payload(rng));
            engine.commit();
          }
        });
      }
      for (auto& thread : threads) thread.join();
      seconds = watch.elapsed_seconds();
      const store::StoreStats stats = engine.stats();
      fsyncs = stats.wal.fsyncs;
      group_commits = stats.wal.group_commits;
    }
    const std::size_t commits = records / kThreads * kThreads;
    const double per_second = static_cast<double>(commits) / seconds;
    const double commits_per_fsync =
        fsyncs == 0 ? 0.0 : static_cast<double>(commits) / static_cast<double>(fsyncs);
    std::printf("  %-12u %12.0f %10llu %14llu %14.1f\n", window_us, per_second,
                static_cast<unsigned long long>(fsyncs),
                static_cast<unsigned long long>(group_commits), commits_per_fsync);
    bench::JsonRecord record("bench_store_throughput");
    record.add("sweep", std::string("group_window"));
    record.add("window_us", static_cast<std::size_t>(window_us));
    record.add("threads", kThreads);
    record.add("commits", commits);
    record.add("appends_per_second", per_second);
    record.add("fsyncs", static_cast<std::size_t>(fsyncs));
    record.add("group_commits", static_cast<std::size_t>(group_commits));
    record.add("commits_per_fsync", commits_per_fsync);
    record.append_to(kJsonPath);
    wipe(dir);
  }
}

void run_seam_overhead(std::size_t records) {
  // The acceptance point for the FileOps seam: the same commit-batched
  // append workload through the raw POSIX ops and through a pass-through
  // FaultFs (zero fault rates, so every op takes the judge + emulated-mmap
  // path). The overhead of having the fault layer in place must stay small.
  std::printf("\nfault-injection seam overhead (%zu records, commit-batched)\n", records);
  std::printf("  %-14s %12s\n", "ops", "appends/s");
  double rates[2] = {0.0, 0.0};
  store::FaultFs pass_through{store::FaultFsOptions{}};
  for (const int with_faultfs : {0, 1}) {
    const std::string dir = bench_dir(with_faultfs ? "seam-faultfs" : "seam-posix");
    wipe(dir);
    store::Options options;
    options.data_dir = dir;
    options.snapshot_interval = 0;
    options.sync = store::SyncMode::kCommit;
    options.file_ops = with_faultfs ? &pass_through : nullptr;
    std::mt19937_64 rng(2004);
    util::Stopwatch watch;
    {
      store::StorageEngine engine(options);
      for (std::size_t i = 0; i < records; ++i) engine.append_event("bench", make_payload(rng));
      engine.commit();
      rates[with_faultfs] = static_cast<double>(records) / watch.elapsed_seconds();
    }
    std::printf("  %-14s %12.0f\n", with_faultfs ? "faultfs" : "posix", rates[with_faultfs]);
    wipe(dir);
  }
  const double overhead_percent = (rates[0] / rates[1] - 1.0) * 100.0;
  std::printf("  pass-through overhead: %.2f%%\n", overhead_percent);
  bench::JsonRecord record("bench_store_throughput");
  record.add("sweep", std::string("fault_seam_overhead"));
  record.add("records", records);
  record.add("posix_appends_per_second", rates[0]);
  record.add("faultfs_appends_per_second", rates[1]);
  record.add("overhead_percent", overhead_percent);
  record.append_to(kJsonPath);
}

void run_fault_sweep(std::size_t records) {
  // --faults: seeded fault rates against the commit path. For each rate the
  // workload appends until the store fails (or finishes), then reopens on
  // the real filesystem and measures what recovery gets back and how fast.
  // The acked count is the zero-loss floor: every record covered by a
  // successful commit must still be there.
  std::printf("\nfault sweep (%zu records, commit every 16)\n", records);
  std::printf("  %-8s %10s %10s %10s %10s %12s\n", "rate", "injected", "acked",
              "retained", "poisoned", "recovery_ms");
  for (const double rate : {0.0, 0.005, 0.02, 0.05}) {
    const std::string dir = bench_dir("faults");
    wipe(dir);
    store::FaultFsOptions fault_options;
    fault_options.seed = 2004;
    fault_options.rules.push_back({store::FaultMatch{}, /*io_error=*/rate / 2.0,
                                   /*no_space=*/rate / 2.0, /*short_write=*/rate / 2.0,
                                   /*fsync_error=*/rate / 2.0});
    store::FaultFs faults(fault_options);
    store::Options options;
    options.data_dir = dir;
    options.segment_size = 64 * 1024;
    options.snapshot_interval = 0;
    options.sync = store::SyncMode::kCommit;
    options.file_ops = &faults;
    std::mt19937_64 rng(2004);
    std::size_t acked = 0;
    std::size_t appended = 0;
    bool poisoned = false;
    try {
      store::StorageEngine engine(options);
      for (std::size_t i = 0; i < records; ++i) {
        engine.append_event("bench", make_payload(rng));
        ++appended;
        if (appended % 16 == 0) {
          engine.commit();
          acked = appended;
        }
      }
      engine.commit();
      acked = appended;
    } catch (const store::Error& e) {
      poisoned = e.kind() == store::ErrorKind::kPoisoned;
    }
    std::size_t retained = 0;
    util::Stopwatch watch;
    double recovery_ms = 0.0;
    {
      store::Options reopen_options = options;
      reopen_options.file_ops = nullptr;
      store::StorageEngine reopened(reopen_options,
                                    [&](std::string_view, std::string_view) { ++retained; });
      recovery_ms = watch.elapsed_ms();
    }
    if (retained < acked)
      std::fprintf(stderr, "ACKED-LOSS at rate %.3f: %zu acked, %zu retained\n", rate,
                   acked, retained);
    const store::FaultFsStats stats = faults.stats();
    std::printf("  %-8.3f %10llu %10zu %10zu %10s %12.2f\n", rate,
                static_cast<unsigned long long>(stats.total_injected()), acked, retained,
                poisoned ? "yes" : "no", recovery_ms);
    bench::JsonRecord record("bench_store_throughput");
    record.add("sweep", std::string("faults"));
    record.add("rate", rate);
    record.add("records", records);
    record.add("injected", static_cast<std::size_t>(stats.total_injected()));
    record.add("acked_records", acked);
    record.add("retained_records", retained);
    record.add("poisoned", std::size_t{poisoned ? 1u : 0u});
    record.add("recovery_ms", recovery_ms);
    record.append_to(kJsonPath);
    wipe(dir);
  }
}

void run_recovery_sweep(std::size_t max_records) {
  std::printf("\ncold-start recovery (kv puts, SyncMode::kNone while seeding)\n");
  std::printf("  %-10s %-10s %12s %14s\n", "records", "snapshot", "recovery_ms",
              "replayed");
  for (std::size_t records = 1000; records <= max_records; records *= 4) {
    for (const bool snapshotted : {false, true}) {
      const std::string dir = bench_dir(snapshotted ? "recover-snap" : "recover-wal");
      wipe(dir);
      store::Options options;
      options.data_dir = dir;
      options.snapshot_interval = 0;
      options.sync = store::SyncMode::kNone;  // seeding speed is not the subject
      std::mt19937_64 rng(records);
      {
        store::StorageEngine seed(options);
        for (std::size_t i = 0; i < records; ++i)
          seed.put("bench/key-" + std::to_string(i % (records / 2 + 1)),
                   make_payload(rng));
        seed.commit();
        if (snapshotted) seed.snapshot();
      }
      util::Stopwatch watch;
      store::StorageEngine reopened(options);
      const double recovery_ms = watch.elapsed_ms();
      const store::StoreStats stats = reopened.stats();
      std::printf("  %-10zu %-10s %12.2f %14llu\n", records, snapshotted ? "yes" : "no",
                  recovery_ms, static_cast<unsigned long long>(stats.replayed_records));
      bench::JsonRecord record("bench_store_throughput");
      record.add("sweep", std::string("recovery"));
      record.add("records", records);
      record.add("snapshotted", std::size_t{snapshotted ? 1u : 0u});
      record.add("recovery_ms", recovery_ms);
      record.add("replayed_records", static_cast<std::size_t>(stats.replayed_records));
      record.add("keys", static_cast<std::size_t>(stats.keys));
      record.append_to(kJsonPath);
      wipe(dir);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Default sizes finish in seconds on CI; pass a scale factor for real
  // runs. --faults adds the seeded fault-rate sweep (recovery time and data
  // retained vs fault rate).
  std::size_t scale = 1;
  bool faults = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--faults") {
      faults = true;
      continue;
    }
    const std::size_t value = static_cast<std::size_t>(std::strtoull(arg.c_str(), nullptr, 10));
    if (value > 0) scale = value;
  }
  run_append_sweep(20000 * scale);
  run_group_window_sweep(2000 * scale);
  run_seam_overhead(20000 * scale);
  run_recovery_sweep(16000 * scale);
  if (faults) run_fault_sweep(2000 * scale);
  wipe("bench_store_data");
  return 0;
}
