// Planning service agent (Section 3.3, Figures 2 and 3).
//
// Accepts planning requests from the coordination service: the assignment
// carries 1) the initial data, 2) the goal, 3) other useful information —
// all inside a case-description XML payload. The service runs the
// genetic-based planner, converts the best plan tree into a process
// description, archives it with the persistent storage service, and replies.
//
// Re-planning (Figure 3) additionally interrogates the runtime environment
// so the new plan avoids activities that cannot currently execute:
//
//   1. CS -> PS   replanning request (+ optional failed-services list)
//   2. PS -> IS   "Brokerage Service?"
//   3. IS -> PS   brokerage found
//   4. PS -> BS   "Application Containers for the activity?"  (per service)
//   5. BS -> PS   a group of containers
//   6. PS -> AC   "Activities executable?"                    (per container)
//   7. AC -> PS   executable or not
//   8. PS -> CS   a new plan over the executable services only
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "planner/gp.hpp"
#include "services/request_tracker.hpp"
#include "wfl/service.hpp"

namespace ig::svc {

class PlanningService : public agent::Agent {
 public:
  PlanningService(std::string name, wfl::ServiceCatalogue catalogue,
                  planner::GpConfig gp_config = {})
      : Agent(std::move(name)),
        catalogue_(std::move(catalogue)),
        gp_config_(gp_config) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  const planner::GpConfig& gp_config() const noexcept { return gp_config_; }
  void set_gp_config(planner::GpConfig config) { gp_config_ = config; }

  /// Virtual-time cost charged per planning episode (models GP runtime).
  void set_planning_latency(grid::SimTime latency) noexcept { planning_latency_ = latency; }

  std::size_t plans_produced() const noexcept { return plans_produced_; }

  /// Reliability of the Figure 3 environment probes: a dropped provider
  /// list or a wedged container no longer stalls the session — its queries
  /// time out and simply contribute no executable services.
  void set_probe_policy(const RetryPolicy& policy) noexcept { probe_policy_ = policy; }
  const RequestTracker& tracker() const noexcept { return tracker_; }
  void set_tracker_seed(std::uint64_t seed) noexcept { tracker_.set_seed(seed); }

 private:
  struct ReplanSession {
    agent::AclMessage original;           ///< request to answer in step 8
    std::set<std::string> excluded;       ///< services named non-executable up front
    std::vector<std::string> to_probe;    ///< services awaiting provider lists
    std::size_t pending_provider_queries = 0;
    std::size_t pending_probes = 0;
    std::size_t next_probe = 0;           ///< per-session probe conversation counter
    bool degraded = false;                ///< a probe query dead-lettered
    std::set<std::string> executable;     ///< services with >= 1 live container
    std::string brokerage;                ///< provider found in step 3
  };

  void handle_plan_request(const agent::AclMessage& message);
  void handle_replan_request(const agent::AclMessage& message);
  void handle_information_reply(const agent::AclMessage& message);
  void handle_provider_reply(const agent::AclMessage& message);
  void handle_probe_reply(const agent::AclMessage& message);
  /// Step 4: one provider query per candidate service, each tracked under
  /// its own conversation id ("<session>/prov/<service>").
  void query_providers(const std::string& session_id);
  void finish_replan(const std::string& session_id);
  void on_dead_letter(const DeadLetter& letter);
  /// Conversation ids look like "<session>/<kind>/...": returns the session.
  static std::string session_of(const std::string& conversation_id);

  /// Runs the GP over `catalogue` for the case in `request`'s content and
  /// replies with the process-description XML (after planning_latency_).
  void plan_and_reply(const agent::AclMessage& request, const wfl::ServiceCatalogue& catalogue);

  wfl::ServiceCatalogue catalogue_;
  planner::GpConfig gp_config_;
  grid::SimTime planning_latency_ = 0.5;
  std::size_t plans_produced_ = 0;
  std::uint64_t next_session_ = 1;
  RequestTracker tracker_;
  RetryPolicy probe_policy_{10.0, 2, 0.25, 2.0};
  std::map<std::string, ReplanSession> sessions_;  ///< keyed by session id
};

}  // namespace ig::svc
