#include "wfl/process.hpp"

#include <algorithm>

namespace ig::wfl {

std::string_view to_string(ActivityKind kind) noexcept {
  switch (kind) {
    case ActivityKind::Begin: return "Begin";
    case ActivityKind::End: return "End";
    case ActivityKind::EndUser: return "End-user";
    case ActivityKind::Fork: return "Fork";
    case ActivityKind::Join: return "Join";
    case ActivityKind::Choice: return "Choice";
    case ActivityKind::Merge: return "Merge";
  }
  return "?";
}

bool is_flow_control(ActivityKind kind) noexcept { return kind != ActivityKind::EndUser; }

Activity& ProcessDescription::add_activity(Activity activity) {
  if (activity.id.empty())
    activity.id = "A" + std::to_string(next_activity_number_);
  if (find_activity(activity.id) != nullptr)
    throw ProcessError("duplicate activity id '" + activity.id + "'");
  ++next_activity_number_;
  activities_.push_back(std::move(activity));
  return activities_.back();
}

Activity& ProcessDescription::add_end_user(std::string id, std::string name,
                                           std::string service_name) {
  Activity activity;
  activity.id = std::move(id);
  activity.name = std::move(name);
  activity.kind = ActivityKind::EndUser;
  activity.service_name = std::move(service_name);
  return add_activity(std::move(activity));
}

Activity& ProcessDescription::add_flow_control(std::string id, ActivityKind kind) {
  if (!is_flow_control(kind)) throw ProcessError("add_flow_control: kind is End-user");
  Activity activity;
  activity.id = std::move(id);
  activity.name = std::string(to_string(kind));
  // Flow-control display names follow the paper's upper-case convention.
  std::transform(activity.name.begin(), activity.name.end(), activity.name.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  activity.kind = kind;
  return add_activity(std::move(activity));
}

Transition& ProcessDescription::add_transition(std::string source, std::string destination,
                                               Condition guard, std::string id) {
  if (find_activity(source) == nullptr)
    throw ProcessError("transition source '" + source + "' does not exist");
  if (find_activity(destination) == nullptr)
    throw ProcessError("transition destination '" + destination + "' does not exist");
  if (id.empty()) id = "TR" + std::to_string(next_transition_number_);
  if (find_transition(id) != nullptr) throw ProcessError("duplicate transition id '" + id + "'");
  ++next_transition_number_;
  Transition transition;
  transition.id = std::move(id);
  transition.source = std::move(source);
  transition.destination = std::move(destination);
  transition.guard = std::move(guard);
  transitions_.push_back(std::move(transition));
  return transitions_.back();
}

const Activity* ProcessDescription::find_activity(std::string_view id) const noexcept {
  for (const auto& activity : activities_) {
    if (activity.id == id) return &activity;
  }
  return nullptr;
}

Activity* ProcessDescription::find_activity_mutable(std::string_view id) noexcept {
  for (auto& activity : activities_) {
    if (activity.id == id) return &activity;
  }
  return nullptr;
}

const Activity* ProcessDescription::find_activity_by_name(std::string_view name) const noexcept {
  for (const auto& activity : activities_) {
    if (activity.name == name) return &activity;
  }
  return nullptr;
}

const Transition* ProcessDescription::find_transition(std::string_view id) const noexcept {
  for (const auto& transition : transitions_) {
    if (transition.id == id) return &transition;
  }
  return nullptr;
}

const Activity& ProcessDescription::begin_activity() const {
  const Activity* found = nullptr;
  for (const auto& activity : activities_) {
    if (activity.kind == ActivityKind::Begin) {
      if (found != nullptr) throw ProcessError("multiple Begin activities");
      found = &activity;
    }
  }
  if (found == nullptr) throw ProcessError("no Begin activity");
  return *found;
}

const Activity& ProcessDescription::end_activity() const {
  const Activity* found = nullptr;
  for (const auto& activity : activities_) {
    if (activity.kind == ActivityKind::End) {
      if (found != nullptr) throw ProcessError("multiple End activities");
      found = &activity;
    }
  }
  if (found == nullptr) throw ProcessError("no End activity");
  return *found;
}

std::vector<std::string> ProcessDescription::predecessors(std::string_view activity_id) const {
  std::vector<std::string> out;
  for (const auto& transition : transitions_) {
    if (transition.destination == activity_id) out.push_back(transition.source);
  }
  return out;
}

std::vector<std::string> ProcessDescription::successors(std::string_view activity_id) const {
  std::vector<std::string> out;
  for (const auto& transition : transitions_) {
    if (transition.source == activity_id) out.push_back(transition.destination);
  }
  return out;
}

std::vector<const Transition*> ProcessDescription::outgoing(std::string_view activity_id) const {
  std::vector<const Transition*> out;
  for (const auto& transition : transitions_) {
    if (transition.source == activity_id) out.push_back(&transition);
  }
  return out;
}

std::vector<const Transition*> ProcessDescription::incoming(std::string_view activity_id) const {
  std::vector<const Transition*> out;
  for (const auto& transition : transitions_) {
    if (transition.destination == activity_id) out.push_back(&transition);
  }
  return out;
}

std::size_t ProcessDescription::end_user_activity_count() const noexcept {
  std::size_t count = 0;
  for (const auto& activity : activities_) {
    if (activity.kind == ActivityKind::EndUser) ++count;
  }
  return count;
}

std::size_t ProcessDescription::flow_control_activity_count() const noexcept {
  return activities_.size() - end_user_activity_count();
}

std::string ProcessDescription::to_display_string() const {
  std::string out = "Process Description: " + name_ + "\n";
  out += "Activities (" + std::to_string(activities_.size()) + "):\n";
  for (const auto& activity : activities_) {
    out += "  " + activity.id + "  " + activity.name + "  [" +
           std::string(to_string(activity.kind)) + "]";
    if (!activity.service_name.empty()) out += "  service=" + activity.service_name;
    if (!activity.constraint.empty()) out += "  constraint=" + activity.constraint;
    out += "\n";
  }
  out += "Transitions (" + std::to_string(transitions_.size()) + "):\n";
  for (const auto& transition : transitions_) {
    const Activity* source = find_activity(transition.source);
    const Activity* destination = find_activity(transition.destination);
    out += "  " + transition.id + "  " + (source ? source->name : transition.source) + " -> " +
           (destination ? destination->name : transition.destination);
    if (!transition.guard.is_trivially_true()) out += "  when " + transition.guard.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace ig::wfl
