# Empty compiler generated dependencies file for bench_matchmaking_scaling.
# This may be replaced when dependencies are built.
