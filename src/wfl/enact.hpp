// The abstract ATN machine, synchronous form.
//
// "The coordination service implements an abstract ATN machine" whose
// configurations are token markings over the process description: Begin
// seeds one token; end-user activities transform the world state through an
// executor; Fork duplicates tokens, Join synchronizes them, Merge passes any
// token through, and Choice routes its token along the first transition
// whose guard holds in the current world state.
//
// This module is the agent-free core of that machine. The coordination
// service runs the same semantics asynchronously across container agents;
// the simulation service and the test suite drive this synchronous engine
// directly ("simulate an experiment before actually conducting it").
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "wfl/case_description.hpp"
#include "wfl/process.hpp"
#include "wfl/service.hpp"

namespace ig::wfl {

/// Executes one end-user activity: receives the activity and the current
/// world state, returns the produced data items, or nullopt on failure.
using ActivityExecutor =
    std::function<std::optional<std::vector<DataSpec>>(const Activity&, const DataSet&)>;

/// A declarative executor backed by a service catalogue: binds the
/// activity's service preconditions against the state and produces the
/// postcondition-implied outputs (named after the activity's output set
/// when given). Fails when the precondition cannot be met.
ActivityExecutor make_catalogue_executor(const ServiceCatalogue& catalogue);

struct EnactmentOptions {
  /// Guardrail for loops whose continue-guard never falsifies.
  int max_loop_iterations = 8;
  /// Upper bound on machine steps (malformed graphs cannot spin forever).
  int max_steps = 100000;
  /// Optional span tracer (not owned; nullptr = tracing off). The machine
  /// emits one Case span, one Activity span per end-user execution, Barrier
  /// spans for Fork/Join, instant Choice decisions, Iteration spans per
  /// loop pass, and Step spans for Begin/End/Merge visits. Timestamps are
  /// machine steps — this engine has no virtual clock.
  obs::SpanTracer* tracer = nullptr;
  /// Case id the spans are grouped under; the process name when empty.
  std::string trace_case_id;
};

/// One executed (or attempted) activity, for the trace.
struct EnactmentStep {
  std::string activity_id;
  std::string activity_name;
  bool executed = false;  ///< true for end-user activities that ran
  bool failed = false;
};

struct EnactmentResult {
  bool success = false;
  std::string error;
  DataSet final_data;
  int activities_executed = 0;
  double goal_satisfaction = 0.0;
  std::vector<EnactmentStep> trace;
};

/// Synchronously enacts `process` for `case_description`. The executor runs
/// each end-user activity; an executor failure fails the whole enactment
/// (the asynchronous coordination service adds retry/re-planning on top).
EnactmentResult enact(const ProcessDescription& process,
                      const CaseDescription& case_description,
                      const ActivityExecutor& executor, const EnactmentOptions& options = {});

}  // namespace ig::wfl
