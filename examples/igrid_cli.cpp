// igrid_cli — command-line front end to the IntelliGrid library.
//
//   igrid_cli validate <workflow.txt>        check a Section 2 workflow text
//   igrid_cli lower <workflow.txt>           print the activity/transition graph
//   igrid_cli plan [seed]                    GP-plan the virolab case
//   igrid_cli simulate <workflow.txt>        dry-run fitness vs the virolab case
//   igrid_cli enact <workflow.txt> [seed]    execute on the simulated grid
//   igrid_cli engine [cases] [shards] [--data-dir <dir>]  sharded enactment demo;
//     with --data-dir the engine journals durably and recovers on restart
//   igrid_cli chaos [seed] [drop%] [cases] [--data-dir <dir>] [--wire]
//     enact under message fault injection; --wire routes every message
//     through the binary codec so chaos drops real frames
//   igrid_cli metrics [cases] [shards]       engine workload -> Prometheus text
//   igrid_cli trace <workflow.txt|demo> [--out file]  enact -> Chrome trace JSON
//   igrid_cli store <dir> [--populate N] [--compact]  inspect a durable data dir
//   igrid_cli wire [messages]                binary vs XML ACL encoding comparison
//   igrid_cli demo                           plan + enact the paper's case study
//
// Workflow files contain the concrete syntax, e.g.
//   BEGIN, POD; P3DR1=P3DR; {ITERATIVE {COND R.Value > 8}
//     {POR; {FORK {P3DR2=P3DR} {P3DR3=P3DR} {P3DR4=P3DR} JOIN}; PSF}}, END
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/engine.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "planner/convert.hpp"
#include "planner/evaluate.hpp"
#include "planner/gp.hpp"
#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "store/storage_engine.hpp"
#include "util/strings.hpp"
#include "wire/acl_xml.hpp"
#include "wire/channel.hpp"
#include "wire/codec.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/structure.hpp"
#include "wfl/validate.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: igrid_cli <validate|lower|plan|simulate|enact|engine|metrics|trace|demo>"
               " [args]\n"
               "  validate <workflow.txt>      parse + structural validation\n"
               "  lower    <workflow.txt>      print the lowered graph\n"
               "  plan     [seed]              GP-plan the virolab case\n"
               "  simulate <workflow.txt>      dry-run fitness for the virolab case\n"
               "  enact    <workflow.txt> [seed]  run on the simulated grid\n"
               "  engine   [cases] [shards] [--data-dir <dir>]  sharded multi-case "
               "enactment demo\n"
               "  chaos    [seed] [drop%%] [cases] [--data-dir <dir>] [--wire]  enact "
               "under message fault injection\n"
               "  metrics  [cases] [shards]    engine workload, Prometheus text on stdout\n"
               "  trace    <workflow.txt|demo> [--out file]  enacted spans as Chrome trace\n"
               "  store    <dir> [--populate N] [--compact]  inspect a durable data dir\n"
               "  wire     [messages]          binary vs XML ACL encoding comparison\n"
               "  demo                         plan + enact the paper's case study\n");
  return 2;
}

/// Preflight for every durable command: a data dir the store cannot
/// possibly use (uncreatable or unwritable) fails fast with exit 1 and one
/// stderr line, instead of a stack trace from deep inside the engine.
bool data_dir_usable(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "error: data dir '%s' is unusable: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  if (::access(dir.c_str(), W_OK | X_OK) != 0) {
    std::fprintf(stderr, "error: data dir '%s' is not writable: %s\n", dir.c_str(),
                 std::strerror(errno));
    return false;
  }
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << stream.rdbuf();
  return buffer.str();
}

wfl::ProcessDescription load_process(const std::string& path) {
  const std::string text = read_file(path);
  // Accept either the concrete workflow syntax or a <process> XML document.
  if (text.find("<process") != std::string::npos)
    return wfl::process_from_xml_string(text);
  return wfl::lower_to_process(wfl::parse_flow(text), path);
}

int cmd_validate(const std::string& path) {
  const wfl::ProcessDescription process = load_process(path);
  const auto errors = wfl::validate(process);
  std::printf("%s: %zu activities (%zu end-user), %zu transitions\n", path.c_str(),
              process.activity_count(), process.end_user_activity_count(),
              process.transition_count());
  if (errors.empty()) {
    std::printf("valid\n");
    return 0;
  }
  std::printf("INVALID:\n%s", wfl::to_string(errors).c_str());
  return 1;
}

int cmd_lower(const std::string& path) {
  const wfl::ProcessDescription process = load_process(path);
  std::printf("%s", process.to_display_string().c_str());
  std::printf("\nworkflow text: %s\n", wfl::lift_from_process(process).to_text().c_str());
  return 0;
}

int cmd_plan(std::uint64_t seed) {
  planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::GpConfig config;
  config.seed = seed;
  const planner::GpResult result = planner::run_gp(problem, config);
  std::printf("fitness %.4f  (fv %.2f, fg %.2f, size %zu) after %zu evaluations\n",
              result.best_fitness.overall, result.best_fitness.validity,
              result.best_fitness.goal, result.best_fitness.size, result.evaluations);
  std::printf("%s\n", planner::to_flow_expr(result.best_plan).to_text().c_str());
  std::printf("%s", result.best_plan.to_tree_string().c_str());
  return result.best_fitness.goal >= 1.0 ? 0 : 1;
}

int cmd_simulate(const std::string& path) {
  const wfl::ProcessDescription process = load_process(path);
  const planner::PlanNode plan = planner::from_process(process);
  planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::PlanEvaluator evaluator(problem);
  const planner::Fitness fitness = evaluator.evaluate(plan);
  std::printf("f=%.4f fv=%.4f fg=%.4f fr=%.4f size=%zu flows=%zu%s\n", fitness.overall,
              fitness.validity, fitness.goal, fitness.representation, fitness.size,
              fitness.flows, fitness.flows_truncated ? " (truncated)" : "");
  return 0;
}

class CliUser : public agent::Agent {
 public:
  CliUser(std::string name, wfl::ProcessDescription process)
      : Agent(std::move(name)), process_(std::move(process)) {}
  void on_start() override {
    agent::AclMessage request;
    request.performative = agent::Performative::Request;
    request.receiver = svc::names::kCoordination;
    request.protocol = svc::protocols::kEnactCase;
    request.content = wfl::process_to_xml_string(process_);
    request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
    send(std::move(request));
  }
  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol == svc::protocols::kCaseCompleted) outcome = message;
  }
  wfl::ProcessDescription process_;
  agent::AclMessage outcome;
};

int cmd_enact(const std::string& path, std::uint64_t seed) {
  svc::EnvironmentOptions options;
  options.seed = seed;
  auto environment = svc::make_environment(options);
  auto& user = environment->platform().spawn<CliUser>("cli", load_process(path));
  environment->run();
  std::printf("success=%s makespan=%s activities=%s failures=%s replans=%s\n",
              user.outcome.param("success").c_str(), user.outcome.param("makespan").c_str(),
              user.outcome.param("activities-executed").c_str(),
              user.outcome.param("dispatch-failures").c_str(),
              user.outcome.param("replans").c_str());
  if (user.outcome.param("success") != "true") {
    std::printf("error: %s\n", user.outcome.param("error").c_str());
    return 1;
  }
  return 0;
}

int cmd_engine(std::size_t cases, std::size_t shards, const std::string& data_dir) {
  if (!data_dir.empty() && !data_dir_usable(data_dir)) return 1;
  engine::EngineConfig config;
  config.shards = shards;
  config.queue_capacity = cases + 4;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  config.storage.data_dir = data_dir;  // empty = in-memory (historical default)
  engine::EnactmentEngine engine(config);

  if (!data_dir.empty())
    std::printf("durable engine at '%s': %zu case(s) recovered from the journal\n",
                data_dir.c_str(), engine.metrics().recovered);
  std::printf("submitting %zu fig10 cases across %zu shard(s)...\n", cases, shards);
  std::vector<engine::CaseId> ids;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::string tenant = "tenant-" + std::to_string(i % 2);
    const engine::CaseId id = engine.submit(virolab::make_fig10_process(),
                                            virolab::make_case_description(), tenant);
    if (id == engine::kInvalidCase) {
      std::printf("  case %zu rejected (queue full)\n", i + 1);
      continue;
    }
    ids.push_back(id);
  }
  engine.drain();

  for (const engine::CaseId id : ids) {
    const auto outcome = engine.result(id);
    if (!outcome.has_value()) continue;
    std::printf("  case %llu: %s on shard %zu, makespan %.1f, %d activities%s%s\n",
                static_cast<unsigned long long>(id),
                std::string(engine::to_string(outcome->state)).c_str(), outcome->shard,
                outcome->makespan, outcome->activities_executed,
                outcome->engine_retries > 0 ? ", retried" : "",
                outcome->error.empty() ? "" : (", error: " + outcome->error).c_str());
  }

  const engine::EngineMetrics metrics = engine.metrics();
  std::printf("engine: %zu submitted, %zu recovered, %zu completed, %zu failed, "
              "%zu retried, p50 latency %.3fs\n",
              metrics.submitted, metrics.recovered, metrics.completed, metrics.failed,
              metrics.retried, metrics.latency_p50);
  for (std::size_t i = 0; i < metrics.shards.size(); ++i)
    std::printf("  shard %zu: %zu run, %zu completed, utilization %.0f%%\n", i,
                metrics.shards[i].cases_run, metrics.shards[i].cases_completed,
                metrics.shards[i].utilization * 100.0);
  return metrics.completed == metrics.submitted ? 0 : 1;
}

int cmd_chaos(std::uint64_t seed, std::uint64_t drop_percent, std::size_t cases,
              const std::string& data_dir, bool wire) {
  if (!data_dir.empty() && !data_dir_usable(data_dir)) return 1;
  const double drop = static_cast<double>(drop_percent) / 100.0;
  engine::EngineConfig config;
  config.shards = 1;  // one shard keeps the chaotic run bit-reproducible
  config.queue_capacity = cases + 4;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  config.environment.heartbeat_period = 5.0;
  config.environment.wire_transport = wire;
  config.storage.data_dir = data_dir;
  // Tighten the request layer so dropped dispatches re-send within a
  // makespan (the defaults assume an honest transport).
  config.environment.coordination.exec_policy = {300.0, 3, 0.5, 10.0};
  config.environment.coordination.replan_policy = {300.0, 2, 0.5, 10.0};
  agent::ChaosRule rule;
  rule.match.receiver = "ac-*";  // everything bound for a container
  rule.drop = drop;
  rule.delay = drop / 2.0;
  config.environment.chaos.rules.push_back(rule);
  config.environment.chaos.seed = seed;
  engine::EnactmentEngine engine(config);

  if (!data_dir.empty())
    std::printf("durable chaos run at '%s': %zu case(s) recovered from the journal\n",
                data_dir.c_str(), engine.metrics().recovered);
  std::printf("enacting %zu fig10 cases, dropping %llu%% of container-bound "
              "messages (seed %llu)%s...\n",
              cases, static_cast<unsigned long long>(drop_percent),
              static_cast<unsigned long long>(seed),
              wire ? ", frames crossing the binary wire codec" : "");
  std::vector<engine::CaseId> ids;
  for (std::size_t i = 0; i < cases; ++i) {
    const double resolution = 8.0 - 0.04 * static_cast<double>(i);
    ids.push_back(engine.submit(virolab::make_fig10_process(resolution),
                                virolab::make_case_description(resolution)));
  }
  engine.drain();

  for (const engine::CaseId id : ids) {
    const auto outcome = engine.result(id);
    if (!outcome.has_value()) continue;
    std::printf("  case %llu: %s, makespan %.1f%s%s\n",
                static_cast<unsigned long long>(id),
                std::string(engine::to_string(outcome->state)).c_str(), outcome->makespan,
                outcome->engine_retries > 0 ? ", retried" : "",
                outcome->error.empty() ? "" : (", error: " + outcome->error).c_str());
  }

  const engine::EngineMetrics metrics = engine.metrics();
  const double recovery =
      cases > 0 ? static_cast<double>(metrics.completed) / static_cast<double>(cases) : 0.0;
  std::printf("chaos: %zu faults injected, %zu request retries, %zu dead letters, "
              "%zu containers recovered\n",
              metrics.faults_injected, metrics.request_retries, metrics.dead_letters,
              metrics.containers_recovered);
  if (wire) {
    // metrics() refreshed the registry, so the shard's wire counters are hot.
    const obs::Labels shard0 = {{"shard", "0"}};
    std::printf("wire: %llu frames (%llu bytes), %llu intern hits, %llu decode errors\n",
                static_cast<unsigned long long>(
                    engine.registry().counter("wire_frames_total", shard0).value()),
                static_cast<unsigned long long>(
                    engine.registry().counter("wire_bytes_total", shard0).value()),
                static_cast<unsigned long long>(
                    engine.registry().counter("wire_intern_hits_total", shard0).value()),
                static_cast<unsigned long long>(
                    engine.registry().counter("wire_decode_errors_total", shard0).value()));
  }
  std::printf("recovery: %zu/%zu cases completed (%.0f%%)\n", metrics.completed, cases,
              recovery * 100.0);
  return recovery >= 0.95 ? 0 : 1;
}

int cmd_metrics(std::size_t cases, std::size_t shards) {
  engine::EngineConfig config;
  config.shards = shards;
  config.queue_capacity = cases + 4;
  config.environment.topology.domains = 2;
  config.environment.topology.nodes_per_domain = 3;
  engine::EnactmentEngine engine(config);

  for (std::size_t i = 0; i < cases; ++i)
    engine.submit(virolab::make_fig10_process(), virolab::make_case_description(),
                  "tenant-" + std::to_string(i % 2));
  engine.drain();

  engine.metrics();  // refreshes the registry's engine and per-shard counters
  const std::string exposition = obs::to_prometheus(engine.registry().snapshot());
  std::string problem;
  if (!obs::validate_prometheus(exposition, &problem)) {
    std::fprintf(stderr, "error: exposition failed validation: %s\n", problem.c_str());
    return 1;
  }
  std::fputs(exposition.c_str(), stdout);
  return 0;
}

int cmd_trace(const std::string& source, const std::string& out_path) {
  svc::EnvironmentOptions options;
  options.span_tracing = true;
  auto environment = svc::make_environment(options);
  const wfl::ProcessDescription process =
      source == "demo" ? virolab::make_fig10_process() : load_process(source);
  auto& user = environment->platform().spawn<CliUser>("cli", process);
  environment->run();
  if (user.outcome.param("success") != "true") {
    std::fprintf(stderr, "error: enactment failed: %s\n",
                 user.outcome.param("error").c_str());
    return 1;
  }

  const std::vector<obs::Span> spans = environment->tracer().spans();
  const std::string trace = obs::to_chrome_trace(spans);
  std::string problem;
  if (!obs::validate_json(trace, &problem)) {
    std::fprintf(stderr, "error: trace is not valid JSON: %s\n", problem.c_str());
    return 1;
  }
  // Every end-user activity the workflow declares must have been traced at
  // least once (loops legitimately trace the same activity several times).
  for (const wfl::Activity& activity : process.activities()) {
    if (activity.kind != wfl::ActivityKind::EndUser) continue;
    bool traced = false;
    for (const obs::Span& span : spans) {
      if (span.kind == obs::SpanKind::Activity && span.name == activity.name) {
        traced = true;
        break;
      }
    }
    if (!traced) {
      std::fprintf(stderr, "error: activity '%s' produced no span\n",
                   activity.name.c_str());
      return 1;
    }
  }

  if (out_path.empty()) {
    std::fputs(trace.c_str(), stdout);
    std::fputc('\n', stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << trace << '\n';
  }
  std::fprintf(stderr, "%zu spans, trace valid%s%s\n", spans.size(),
               out_path.empty() ? "" : ", written to ", out_path.c_str());
  return 0;
}

int cmd_store(const std::string& dir, std::uint64_t populate, bool compact) {
  if (!data_dir_usable(dir)) return 1;
  store::Options options;
  options.data_dir = dir;
  options.segment_size = 64 * 1024;  // small segments so demos roll over
  if (populate > 0) {
    // Write a recognisable workload (puts, a few erases, journal events),
    // then close so the inspection below exercises a genuine recovery.
    store::StorageEngine writer(options);
    for (std::uint64_t i = 0; i < populate; ++i) {
      const std::string key = "demo/key-" + std::to_string(i);
      writer.put(key, "value-" + std::to_string(i));
      writer.append_event("demo", "event-" + std::to_string(i));
    }
    for (std::uint64_t i = 0; i < populate; i += 4)
      writer.erase("demo/key-" + std::to_string(i));
    writer.commit();
    std::printf("populated '%s' with %llu puts + events (every 4th key erased)\n",
                dir.c_str(), static_cast<unsigned long long>(populate));
  }

  std::size_t replayed_events = 0;
  store::StorageEngine engine(options, [&](std::string_view, std::string_view) {
    ++replayed_events;
  });
  store::StoreStats stats = engine.stats();
  if (!stats.durable) {
    std::fprintf(stderr, "error: '%s' did not open in durable mode\n", dir.c_str());
    return 1;
  }
  std::printf("store '%s'\n", dir.c_str());
  std::printf("  keys               %llu\n", static_cast<unsigned long long>(stats.keys));
  std::printf("  wal segments       %llu\n", static_cast<unsigned long long>(stats.segments));
  std::printf("  wal records        %llu (%llu bytes)\n",
              static_cast<unsigned long long>(stats.wal.records),
              static_cast<unsigned long long>(stats.wal.bytes));
  std::printf("  last lsn           %llu\n", static_cast<unsigned long long>(stats.last_lsn));
  std::printf("  last snapshot lsn  %llu\n",
              static_cast<unsigned long long>(stats.snapshot_lsn));
  std::printf("  replayed records   %llu (%zu journal events)\n",
              static_cast<unsigned long long>(stats.replayed_records), replayed_events);
  std::printf("  torn tail repaired %llu\n",
              static_cast<unsigned long long>(stats.wal.torn_tail_repaired));
  std::printf("  recovery           %.2f ms\n", stats.recovery_ms);

  if (compact) {
    if (!engine.snapshot()) {
      std::fprintf(stderr, "error: snapshot failed\n");
      return 1;
    }
    stats = engine.stats();
    std::printf("compacted: %llu segment(s) removed, %llu live, snapshot lsn %llu\n",
                static_cast<unsigned long long>(stats.segments_compacted),
                static_cast<unsigned long long>(stats.segments),
                static_cast<unsigned long long>(stats.snapshot_lsn));
  }

  const auto keys = engine.keys_with_prefix("");
  const std::size_t shown = keys.size() < 8 ? keys.size() : 8;
  for (std::size_t i = 0; i < shown; ++i)
    std::printf("  key[%zu] %s\n", i, keys[i].c_str());
  if (keys.size() > shown) std::printf("  ... %zu more\n", keys.size() - shown);
  return 0;
}

int cmd_wire(std::size_t messages) {
  // Side-by-side of the two ACL encodings on a representative exchange:
  // the binary codec sends the protocol vocabulary once and ids after,
  // XML re-spells it per message.
  wire::Encoder encoder;
  std::string frames;
  std::size_t xml_bytes = 0;
  agent::AclMessage message;
  message.performative = agent::Performative::Request;
  message.sender = "coordination";
  message.receiver = "ac-3";
  message.protocol = svc::protocols::kEnactCase;
  message.ontology = "grid-standard";
  for (std::size_t i = 0; i < messages; ++i) {
    message.conversation_id = "case-" + std::to_string(i);
    message.params["activity"] = "mc-gen-" + std::to_string(i);
    message.params["deadline"] = "12.5";
    encoder.encode(message, frames);
    xml_bytes += wire::acl_to_xml(message).size();
  }
  wire::Stream stream;
  stream.feed_bytes(frames);
  const std::size_t delivered = stream.receive([](const wire::WireMessageView&) {});
  const wire::EncoderStats stats = encoder.stats();
  std::printf("%zu messages: binary %llu bytes (%.1f/msg), XML %zu bytes (%.1f/msg), "
              "%.1fx smaller\n",
              messages, static_cast<unsigned long long>(stats.frame_bytes),
              static_cast<double>(stats.frame_bytes) / static_cast<double>(messages),
              xml_bytes, static_cast<double>(xml_bytes) / static_cast<double>(messages),
              static_cast<double>(xml_bytes) / static_cast<double>(stats.frame_bytes));
  std::printf("intern table: %zu entries, %llu hits, %llu definitions\n",
              encoder.intern_size(), static_cast<unsigned long long>(stats.intern_hits),
              static_cast<unsigned long long>(stats.intern_misses));
  std::printf("decoded %zu/%zu frames, %llu errors\n", delivered, messages,
              static_cast<unsigned long long>(stream.decode_errors()));
  return delivered == messages ? 0 : 1;
}

int cmd_demo() {
  std::printf("== planning the 3DSD case (Table 1 parameters) ==\n");
  if (cmd_plan(2004) != 0) return 1;
  std::printf("\n== enacting the paper's Figure 10 workflow ==\n");
  svc::EnvironmentOptions options;
  auto environment = svc::make_environment(options);
  auto& user =
      environment->platform().spawn<CliUser>("cli", virolab::make_fig10_process());
  environment->run();
  std::printf("success=%s makespan=%s activities=%s\n",
              user.outcome.param("success").c_str(), user.outcome.param("makespan").c_str(),
              user.outcome.param("activities-executed").c_str());
  return user.outcome.param("success") == "true" ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  // Numeric arguments parse strictly; a typo reports its position instead of
  // aborting on an uncaught std::invalid_argument.
  const auto uint_arg = [&](int index, std::uint64_t fallback) {
    if (argc <= index) return fallback;
    const auto value = ig::util::parse_uint(argv[index]);
    if (!value.has_value()) {
      std::fprintf(stderr, "error: argument %d ('%s') is not a non-negative integer\n", index,
                   argv[index]);
      std::exit(1);
    }
    return *value;
  };
  try {
    if (command == "validate" && argc >= 3) return cmd_validate(argv[2]);
    if (command == "lower" && argc >= 3) return cmd_lower(argv[2]);
    if (command == "plan") return cmd_plan(uint_arg(2, 1));
    if (command == "simulate" && argc >= 3) return cmd_simulate(argv[2]);
    if (command == "enact" && argc >= 3) return cmd_enact(argv[2], uint_arg(3, 42));
    // engine/chaos mix positional numbers with flags: strip the flags first,
    // then bind the remaining positionals in order.
    if (command == "engine" || command == "chaos") {
      std::string data_dir;
      bool wire = false;
      std::vector<std::uint64_t> positional;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--data-dir" && i + 1 < argc) {
          data_dir = argv[++i];
          continue;
        }
        if (arg == "--wire") {
          wire = true;
          continue;
        }
        const auto value = ig::util::parse_uint(arg);
        if (!value.has_value()) {
          std::fprintf(stderr, "error: argument %d ('%s') is not a non-negative integer\n",
                       i, arg.c_str());
          return 1;
        }
        positional.push_back(*value);
      }
      const auto pos = [&](std::size_t index, std::uint64_t fallback) {
        return index < positional.size() ? positional[index] : fallback;
      };
      if (command == "engine")
        return cmd_engine(pos(0, 6), pos(1, 2), data_dir);
      return cmd_chaos(pos(0, 2004), pos(1, 20), pos(2, 4), data_dir, wire);
    }
    if (command == "metrics") return cmd_metrics(uint_arg(2, 4), uint_arg(3, 2));
    if (command == "trace" && argc >= 3) {
      std::string out_path;
      for (int i = 3; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--out") out_path = argv[i + 1];
      return cmd_trace(argv[2], out_path);
    }
    if (command == "store" && argc >= 3) {
      std::uint64_t populate = 0;
      bool compact = false;
      for (int i = 3; i < argc; ++i) {
        if (std::string(argv[i]) == "--compact") compact = true;
        if (std::string(argv[i]) == "--populate" && i + 1 < argc)
          populate = uint_arg(i + 1, 0);
      }
      return cmd_store(argv[2], populate, compact);
    }
    if (command == "wire") return cmd_wire(uint_arg(2, 1000));
    if (command == "demo") return cmd_demo();
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
