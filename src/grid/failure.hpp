// Failure injection for robustness experiments.
//
// "The ability to recover from errors caused by the failure of individual
// nodes is a critical aspect for the execution of complex tasks." The
// injector drives two failure modes: per-dispatch execution failures
// (container crashes mid-task) and scheduled outages (a container or node
// goes down at a virtual time and possibly comes back).
#pragma once

#include <algorithm>
#include <functional>
#include <string>

#include "grid/sim.hpp"
#include "util/rng.hpp"

namespace ig::grid {

class Grid;

/// Draws per-dispatch failures and schedules outages on the simulation.
class FailureInjector {
 public:
  explicit FailureInjector(util::Rng rng) : rng_(rng) {}

  /// Samples whether a dispatch to a container with the given failure
  /// probability (already combined with node reliability) fails. The
  /// configured failure floor acts as a lower bound, so a whole shard/site
  /// can be made unreliable at runtime without rebuilding its topology.
  bool draw_failure(double failure_probability) {
    return rng_.next_bool(std::max(failure_probability, failure_floor_));
  }

  /// Minimum per-dispatch failure probability (engine-style per-shard fault
  /// injection). 0 restores the topology-configured behaviour.
  void set_failure_floor(double probability) noexcept { failure_floor_ = probability; }
  double failure_floor() const noexcept { return failure_floor_; }

  /// Schedules a container outage at `at`; restored after `duration`
  /// (duration <= 0 means permanent).
  void schedule_container_outage(Simulation& sim, Grid& grid, const std::string& container_id,
                                 SimTime at, SimTime duration);

  /// Schedules a node outage (all containers on it become unavailable).
  void schedule_node_outage(Simulation& sim, Grid& grid, const std::string& node_id, SimTime at,
                            SimTime duration);

  util::Rng& rng() noexcept { return rng_; }

 private:
  util::Rng rng_;
  double failure_floor_ = 0.0;
};

}  // namespace ig::grid
