// Checkpoint and migrate a long-running case (Section 1: "some of the
// computational tasks are long lasting and require checkpointing").
//
//   $ ./checkpoint_migration
//
// Runs the Figure 10 case partway on one grid, snapshots it through the
// coordination service's checkpoint protocol, tears the whole environment
// down (as if the site failed), restores the snapshot on a *different* grid
// and lets it finish. Activities completed before the snapshot are replayed
// from the checkpoint instead of re-executed.
#include <cstdio>
#include <string>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;
namespace names = svc::names;
namespace protocols = svc::protocols;

namespace {

class Operator : public agent::Agent {
 public:
  using Agent::Agent;
  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol == protocols::kCheckpointCase) checkpoint = message;
    if (message.protocol == protocols::kCaseCompleted) outcome = message;
  }
  void request(agent::AgentPlatform& platform, agent::AclMessage message) {
    message.sender = name();
    platform.send(std::move(message));
  }
  agent::AclMessage checkpoint;
  agent::AclMessage outcome;
};

}  // namespace

int main() {
  std::string snapshot;

  // --- Site A: start the case and checkpoint mid-run -------------------------
  {
    svc::EnvironmentOptions options;
    options.seed = 1;
    auto site_a = svc::make_environment(options);
    auto& op = site_a->platform().spawn<Operator>("operator");

    agent::AclMessage enact;
    enact.performative = agent::Performative::Request;
    enact.receiver = names::kCoordination;
    enact.protocol = protocols::kEnactCase;
    enact.content = wfl::process_to_xml_string(virolab::make_fig10_process());
    enact.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
    op.request(site_a->platform(), enact);

    // Let the case run for a slice of virtual time, then snapshot.
    site_a->sim().run_until(30.0);
    agent::AclMessage checkpoint;
    checkpoint.performative = agent::Performative::Request;
    checkpoint.receiver = names::kCoordination;
    checkpoint.protocol = protocols::kCheckpointCase;
    checkpoint.params["case"] = "case-1";
    op.request(site_a->platform(), checkpoint);
    site_a->run();

    if (op.checkpoint.performative != agent::Performative::Inform) {
      std::fprintf(stderr, "checkpoint failed: %s\n", op.checkpoint.param("error").c_str());
      return 1;
    }
    snapshot = op.checkpoint.content;
    std::printf("site A: checkpoint taken at t=30 (%zu bytes)\n", snapshot.size());
  }  // site A is destroyed here — the case is gone with it

  // --- Site B: restore the snapshot and run to completion ----------------------
  svc::EnvironmentOptions options;
  options.seed = 99;  // a different grid topology
  auto site_b = svc::make_environment(options);
  auto& op = site_b->platform().spawn<Operator>("operator");

  agent::AclMessage restore;
  restore.performative = agent::Performative::Request;
  restore.receiver = names::kCoordination;
  restore.protocol = protocols::kRestoreCase;
  restore.content = snapshot;
  op.request(site_b->platform(), restore);
  site_b->run();

  std::printf("site B: case restored and completed: success=%s\n",
              op.outcome.param("success").c_str());
  std::printf("  activities replayed from checkpoint: %s\n",
              op.outcome.param("activities-replayed").c_str());
  std::printf("  activities executed on site B:       %s\n",
              op.outcome.param("activities-executed").c_str());
  std::printf("  goal satisfaction:                   %s\n",
              op.outcome.param("goal-satisfaction").c_str());
  return op.outcome.param("success") == "true" ? 0 : 1;
}
