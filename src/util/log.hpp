// Lightweight leveled logger for the IntelliGrid library.
//
// The logger is intentionally minimal: a process-global level, synchronized
// writes to a std::ostream, and printf-free formatting via ostream insertion.
// Core services and the grid simulator log through this one sink so traces
// from agents interleave in a deterministic, readable order.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace ig::util {

/// Severity levels, ordered from most to least verbose.
enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Human-readable name of a level ("TRACE", "DEBUG", ...).
std::string_view to_string(LogLevel level) noexcept;

/// Process-global logger configuration and sink.
class Logger {
 public:
  /// Returns the process-wide logger instance.
  static Logger& instance();

  /// Sets the minimum level that will be emitted.
  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Redirects output; the stream must outlive the logger's use of it.
  void set_stream(std::ostream* stream) noexcept;

  /// True if a message at `level` would be emitted.
  bool enabled(LogLevel level) const noexcept { return level >= level_; }

  /// Emits one line: "[LEVEL] component: message".
  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger();

  LogLevel level_;
  std::ostream* stream_;
  std::mutex mutex_;
};

/// Builds a log line with ostream syntax and emits it on destruction.
///
/// Usage: `LogLine(LogLevel::Info, "planner") << "gen " << g;`
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component), enabled_(Logger::instance().enabled(level)) {}

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  ~LogLine() {
    if (enabled_) Logger::instance().write(level_, component_, buffer_.str());
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  bool enabled_;
  std::ostringstream buffer_;
};

}  // namespace ig::util

#define IG_LOG_TRACE(component) ::ig::util::LogLine(::ig::util::LogLevel::Trace, component)
#define IG_LOG_DEBUG(component) ::ig::util::LogLine(::ig::util::LogLevel::Debug, component)
#define IG_LOG_INFO(component) ::ig::util::LogLine(::ig::util::LogLevel::Info, component)
#define IG_LOG_WARN(component) ::ig::util::LogLine(::ig::util::LogLevel::Warn, component)
#define IG_LOG_ERROR(component) ::ig::util::LogLine(::ig::util::LogLevel::Error, component)
