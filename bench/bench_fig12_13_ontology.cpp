// Figures 12-13 — The ontology structure and the instances used for the
// enactment of the 3D-reconstruction process description.
//
// Prints the logic view of the ten-frame standard grid ontology (Figure 12)
// and the instance inventory of the populated 3DSD ontology (Figure 13),
// validates every instance against its frame, and round-trips the whole
// ontology through the XML interchange format.
#include <cstdio>

#include "meta/standard.hpp"
#include "meta/xml_io.hpp"
#include "util/strings.hpp"
#include "virolab/ontology.hpp"

using namespace ig;

int main() {
  std::printf("Figure 12: logic view of the ontology structure\n\n");
  const meta::Ontology shell = meta::standard_grid_ontology();
  for (const auto* cls : shell.classes()) {
    const auto slots = shell.effective_slots(cls->name());
    std::vector<std::string> names;
    names.reserve(slots.size());
    for (const auto& slot : slots) names.push_back(slot.name);
    std::printf("%-22s (%2zu slots): %s\n", cls->name().c_str(), slots.size(),
                util::join(names, ", ").c_str());
  }

  std::printf("\nFigure 13: instances for task T1 (3DSD)\n\n");
  const meta::Ontology populated = virolab::make_fig13_ontology();
  struct Expectation {
    const char* class_name;
    std::size_t expected;
  };
  const Expectation expectations[] = {
      {"Task", 1},           {"Process Description", 1}, {"Case Description", 1},
      {"Activity", 13},      {"Transition", 15},         {"Data", 12},
      {"Service", 4},
  };
  bool counts_ok = true;
  std::printf("%-22s paper   measured\n", "instances of");
  for (const auto& expectation : expectations) {
    const std::size_t measured = populated.instances_of(expectation.class_name).size();
    counts_ok = counts_ok && measured == expectation.expected;
    std::printf("%-22s %-7zu %zu\n", expectation.class_name, expectation.expected, measured);
  }

  const auto issues = populated.validate();
  std::printf("\nfacet validation issues: %zu\n", issues.size());
  for (const auto& issue : issues)
    std::printf("  [%s.%s] %s\n", issue.instance_id.c_str(), issue.slot.c_str(),
                issue.message.c_str());

  // Wire round trip.
  const std::string xml = meta::to_xml_string(populated);
  const meta::Ontology restored = meta::from_xml_string(xml);
  const bool roundtrip = restored.instance_count() == populated.instance_count() &&
                         restored.class_count() == populated.class_count() &&
                         restored.validate().empty();
  std::printf("\nXML interchange: %zu bytes, round-trips losslessly: %s\n", xml.size(),
              roundtrip ? "yes" : "NO");

  // Sample rows in the figure's table style.
  std::printf("\nsample instance rows:\n");
  for (const char* id : {"T1", "A11", "TR14", "D7", "svc-PSF"}) {
    const meta::Instance* instance = populated.find_instance(id);
    if (instance == nullptr) continue;
    std::printf("  %-8s (%s)\n", id, instance->class_name().c_str());
    for (const auto& [slot, value] : instance->slots())
      std::printf("    %-22s %s\n", slot.c_str(), value.to_display_string().c_str());
  }

  const bool ok = counts_ok && issues.empty() && roundtrip && shell.class_count() == 10;
  std::printf("\nfigures 12-13 reproduced: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
