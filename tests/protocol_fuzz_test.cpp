// Malformed-message fault injection across the ACL protocol layer.
//
// Every service must degrade gracefully when a peer sends garbage: reply
// NotUnderstood/Failure with a "reason" param, or drop the payload — never
// throw out of the handler. The fuzz vectors cover the classic parse traps:
// empty strings, non-numeric text, overflow, negatives where unsigned is
// expected, trailing junk, and missing keys.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "services/user_interface.hpp"
#include "util/strings.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"
#include "xml/xml.hpp"

namespace ig::svc {
namespace {

using agent::AclMessage;
using agent::Performative;

/// Strings that must never parse as a double (or int / uint).
const char* const kBadNumbers[] = {"", "   ", "abc", "12x", "1e999999", "--3", "nan(",
                                   "0x10"};

// ---------------------------------------------------------------------------
// util::parse_* unit coverage
// ---------------------------------------------------------------------------

TEST(ParseFuzz, DoubleAcceptsUsualShapes) {
  EXPECT_DOUBLE_EQ(util::parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(util::parse_double(" -1e3 ").value(), -1000.0);
  EXPECT_DOUBLE_EQ(util::parse_double("+4").value(), 4.0);
  EXPECT_DOUBLE_EQ(util::parse_double(".5").value(), 0.5);
}

TEST(ParseFuzz, DoubleRejectsGarbage) {
  for (const char* text : kBadNumbers)
    EXPECT_FALSE(util::parse_double(text).has_value()) << "'" << text << "'";
}

TEST(ParseFuzz, IntRejectsGarbageAndOverflow) {
  EXPECT_EQ(util::parse_int("-42").value(), -42);
  EXPECT_EQ(util::parse_int("+7").value(), 7);
  for (const char* text : kBadNumbers)
    EXPECT_FALSE(util::parse_int(text).has_value()) << "'" << text << "'";
  EXPECT_FALSE(util::parse_int("2.5").has_value());
  EXPECT_FALSE(util::parse_int("99999999999999999999").has_value());
}

TEST(ParseFuzz, UintRejectsNegatives) {
  EXPECT_EQ(util::parse_uint("18446744073709551615").value(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(util::parse_uint("-5").has_value());
  EXPECT_FALSE(util::parse_uint("-0").has_value());
  EXPECT_FALSE(util::parse_uint("18446744073709551616").has_value());
}

TEST(ParseFuzz, BoolAcceptsCanonicalForms) {
  EXPECT_TRUE(util::parse_bool("true").value());
  EXPECT_TRUE(util::parse_bool("TRUE").value());
  EXPECT_TRUE(util::parse_bool("1").value());
  EXPECT_FALSE(util::parse_bool("false").value());
  EXPECT_FALSE(util::parse_bool("0").value());
  EXPECT_FALSE(util::parse_bool("yes").has_value());
  EXPECT_FALSE(util::parse_bool("").has_value());
}

// ---------------------------------------------------------------------------
// AclMessage typed accessors
// ---------------------------------------------------------------------------

TEST(MessageFuzz, TypedAccessorsNeverThrow) {
  AclMessage message;
  message.params["d"] = "2.5";
  message.params["i"] = "-3";
  message.params["u"] = "7";
  message.params["b"] = "true";
  message.params["junk"] = "zzz";

  EXPECT_DOUBLE_EQ(message.param_double("d").value(), 2.5);
  EXPECT_EQ(message.param_int("i").value(), -3);
  EXPECT_EQ(message.param_uint("u").value(), 7u);
  EXPECT_TRUE(message.param_bool("b").value());

  EXPECT_FALSE(message.param_double("junk").has_value());
  EXPECT_FALSE(message.param_double("missing").has_value());
  EXPECT_FALSE(message.param_uint("i").has_value());  // negative where unsigned

  EXPECT_DOUBLE_EQ(message.param_double("junk", 9.0), 9.0);
  EXPECT_EQ(message.param_int("missing", 4), 4);
  EXPECT_EQ(message.param_uint("junk", 11u), 11u);
  EXPECT_TRUE(message.param_bool("missing", true));
}

TEST(MessageFuzz, DescribeBadParamNamesTheProblem) {
  AclMessage message;
  message.params["seed"] = "-5";
  const std::string described = message.describe_bad_param("seed", "uint");
  EXPECT_NE(described.find("seed"), std::string::npos);
  EXPECT_NE(described.find("-5"), std::string::npos);
  const std::string missing = message.describe_bad_param("nope", "double");
  EXPECT_NE(missing.find("missing"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live services under fuzzed requests
// ---------------------------------------------------------------------------

class Client : public agent::Agent {
 public:
  explicit Client(std::string name = "ui") : Agent(std::move(name)) {}
  void handle_message(const AclMessage& message) override { replies.push_back(message); }

  void request(agent::AgentPlatform& platform, AclMessage message) {
    message.sender = name();
    platform.send(std::move(message));
  }

  std::vector<AclMessage> replies;
};

struct Fixture {
  Fixture() {
    EnvironmentOptions options;
    options.topology.domains = 2;
    options.topology.nodes_per_domain = 2;
    options.seed = 11;
    environment = make_environment(options);
    client = &environment->platform().spawn<Client>("fuzzer");
  }

  AclMessage last() const {
    EXPECT_FALSE(client->replies.empty());
    return client->replies.empty() ? AclMessage{} : client->replies.back();
  }

  std::unique_ptr<Environment> environment;
  Client* client = nullptr;
};

TEST(ServiceFuzz, SchedulingBouncesMalformedTaskWork) {
  for (const char* bad : {"", "abc", "1e999999"}) {
    Fixture fixture;
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kScheduling;
    request.protocol = protocols::kScheduleRequest;
    request.params["tasks"] = std::string("t1:") + bad;
    request.params["speeds"] = "1.0";
    fixture.client->request(fixture.environment->platform(), request);
    fixture.environment->run();
    const AclMessage reply = fixture.last();
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << "'" << bad << "'";
    EXPECT_NE(reply.param("reason").find("task entry"), std::string::npos);
  }
}

TEST(ServiceFuzz, SchedulingBouncesMalformedSpeed) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kScheduling;
  request.protocol = protocols::kScheduleRequest;
  request.params["tasks"] = "t1:4.0";
  request.params["speeds"] = "1.0,fast";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::NotUnderstood);
  EXPECT_NE(reply.param("reason").find("speed entry"), std::string::npos);
}

TEST(ServiceFuzz, MatchmakingBouncesMalformedDeadlineParams) {
  for (const char* key : {"work", "deadline"}) {
    Fixture fixture;
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kMatchmaking;
    request.protocol = protocols::kFindContainer;
    request.params["service"] = "P3DR";
    request.params["strategy"] = "deadline";
    request.params[key] = "not-a-number";
    fixture.client->request(fixture.environment->platform(), request);
    fixture.environment->run();
    const AclMessage reply = fixture.last();
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << key;
    EXPECT_NE(reply.param("reason").find(key), std::string::npos);
  }
}

TEST(ServiceFuzz, MatchmakingMissingDeadlineParamsFallBackToDefaults) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kMatchmaking;
  request.protocol = protocols::kFindContainer;
  request.params["service"] = "P3DR";
  request.params["strategy"] = "deadline";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Inform);
  EXPECT_FALSE(reply.param("container").empty());
}

TEST(ServiceFuzz, PlanningBouncesBadSeed) {
  for (const char* bad : {"abc", "-5", "1e999999", ""}) {
    Fixture fixture;
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kPlanning;
    request.protocol = protocols::kPlanRequest;
    request.content = wfl::case_to_xml_string(virolab::make_case_description());
    request.params["seed"] = bad;
    fixture.client->request(fixture.environment->platform(), request);
    fixture.environment->run();
    const AclMessage reply = fixture.last();
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << "'" << bad << "'";
    EXPECT_NE(reply.param("reason").find("seed"), std::string::npos);
  }
}

TEST(ServiceFuzz, PlanningFailsGracefullyOnGarbageCaseXml) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kPlanning;
  request.protocol = protocols::kPlanRequest;
  request.content = "<not-a-case>";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_FALSE(reply.param("error").empty());
}

TEST(ServiceFuzz, CoordinationRejectsGarbageProcessXml) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kCoordination;
  request.protocol = protocols::kEnactCase;
  request.content = "<<<definitely not xml";
  request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_FALSE(reply.param("error").empty());
}

/// Builds a structurally valid checkpoint document, then lets the caller
/// mangle one attribute before it is shipped to the coordination service.
xml::Document make_checkpoint() {
  xml::Document document("checkpoint");
  xml::Element& root = document.root();
  root.set_attribute("case", "case-x");
  root.add_child("process-xml")
      .set_text(wfl::process_to_xml_string(virolab::make_fig10_process()));
  root.add_child("case-xml")
      .set_text(wfl::case_to_xml_string(virolab::make_case_description()));
  root.add_child("dataset-xml").set_text(wfl::dataset_to_xml_string(wfl::DataSet{}));
  root.set_attribute("replans", "0");
  return document;
}

TEST(ServiceFuzz, CoordinationRejectsNonIntegerReplansInCheckpoint) {
  Fixture fixture;
  xml::Document checkpoint = make_checkpoint();
  checkpoint.root().set_attribute("replans", "abc");
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kCoordination;
  request.protocol = protocols::kRestoreCase;
  request.content = checkpoint.to_string();
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_NE(reply.param("error").find("bad checkpoint"), std::string::npos);
}

TEST(ServiceFuzz, CoordinationRejectsNonIntegerCompletionCount) {
  Fixture fixture;
  xml::Document checkpoint = make_checkpoint();
  xml::Element& completed = checkpoint.root().add_child("completions").add_child("completed");
  completed.set_attribute("activity", "A2");
  completed.set_attribute("count", "two");
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kCoordination;
  request.protocol = protocols::kRestoreCase;
  request.content = checkpoint.to_string();
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  EXPECT_EQ(reply.performative, Performative::Failure);
  EXPECT_NE(reply.param("error").find("bad checkpoint"), std::string::npos);
}

TEST(ServiceFuzz, BrokerageDropsReportWithMangledDuration) {
  Fixture fixture;
  AclMessage report;
  report.performative = Performative::Inform;
  report.receiver = names::kBrokerage;
  report.protocol = protocols::kReportPerformance;
  report.params["container"] = "fuzzed-container";
  report.params["outcome"] = "success";
  report.params["duration"] = "soon";
  fixture.client->request(fixture.environment->platform(), report);
  fixture.environment->run();
  EXPECT_EQ(fixture.environment->brokerage().history_of("fuzzed-container"), nullptr);
}

TEST(ServiceFuzz, BrokerageAcceptsReportWithMissingDuration) {
  Fixture fixture;
  AclMessage report;
  report.performative = Performative::Inform;
  report.receiver = names::kBrokerage;
  report.protocol = protocols::kReportPerformance;
  report.params["container"] = "fuzzed-container";
  report.params["outcome"] = "success";
  fixture.client->request(fixture.environment->platform(), report);
  fixture.environment->run();
  const auto* history = fixture.environment->brokerage().history_of("fuzzed-container");
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->successes, 1);
}

TEST(ServiceFuzz, UserInterfaceZeroesMangledOutcomeNumbers) {
  UserInterfaceAgent ui("ui");
  AclMessage done;
  done.performative = Performative::Inform;
  done.protocol = protocols::kCaseCompleted;
  done.params["success"] = "maybe";
  done.params["makespan"] = "fast";
  done.params["activities-executed"] = "1e999999";
  done.params["dispatch-failures"] = "-?";
  done.params["replans"] = "";
  ui.handle_message(done);
  ASSERT_TRUE(ui.finished());
  const TaskOutcome& outcome = ui.outcome();
  EXPECT_FALSE(outcome.success);
  EXPECT_DOUBLE_EQ(outcome.makespan, 0.0);
  EXPECT_EQ(outcome.activities_executed, 0);
  EXPECT_EQ(outcome.dispatch_failures, 0);
  EXPECT_EQ(outcome.replans, 0);
}

TEST(ServiceFuzz, EveryServiceBouncesUnknownProtocolWithReason) {
  Fixture fixture;
  const char* const services[] = {
      names::kInformation,  names::kBrokerage,  names::kMatchmaking,
      names::kMonitoring,   names::kOntology,   names::kAuthentication,
      names::kPersistentStorage, names::kScheduling, names::kSimulation,
      names::kCoordination, names::kPlanning};
  for (const char* service : services) {
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = service;
    request.protocol = "no-such-protocol";
    fixture.client->request(fixture.environment->platform(), request);
  }
  // One container agent too — it speaks the same bounce convention.
  const auto hosts = fixture.environment->grid().containers_hosting("POD");
  ASSERT_FALSE(hosts.empty());
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = hosts.front()->id();
  request.protocol = "no-such-protocol";
  fixture.client->request(fixture.environment->platform(), request);

  fixture.environment->run();
  ASSERT_EQ(fixture.client->replies.size(), std::size(services) + 1);
  for (const AclMessage& reply : fixture.client->replies) {
    EXPECT_EQ(reply.performative, Performative::NotUnderstood) << reply.sender;
    EXPECT_NE(reply.param("reason").find("no-such-protocol"), std::string::npos)
        << reply.sender;
  }
}

TEST(ServiceFuzz, InformFuzzToEveryServiceIsSilentlyTolerated) {
  // Inform/Failure carrying garbage must not bounce (reply-loop prevention)
  // and, above all, must not crash the platform.
  Fixture fixture;
  const char* const services[] = {
      names::kInformation,  names::kBrokerage,  names::kMatchmaking,
      names::kMonitoring,   names::kOntology,   names::kAuthentication,
      names::kPersistentStorage, names::kScheduling, names::kSimulation,
      names::kCoordination, names::kPlanning};
  for (const char* service : services) {
    AclMessage junk;
    junk.performative = Performative::Inform;
    junk.receiver = service;
    junk.protocol = "no-such-protocol";
    junk.params["work"] = "NaNaNaN";
    fixture.client->request(fixture.environment->platform(), junk);
  }
  fixture.environment->run();
  EXPECT_TRUE(fixture.client->replies.empty());
  EXPECT_EQ(fixture.environment->platform().handler_failures_total(), 0u);
}

}  // namespace
}  // namespace ig::svc
