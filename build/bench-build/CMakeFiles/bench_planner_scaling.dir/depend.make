# Empty dependencies file for bench_planner_scaling.
# This may be replaced when dependencies are built.
