# Empty dependencies file for service_type_test.
# This may be replaced when dependencies are built.
