file(REMOVE_RECURSE
  "CMakeFiles/plan_tree_test.dir/plan_tree_test.cpp.o"
  "CMakeFiles/plan_tree_test.dir/plan_tree_test.cpp.o.d"
  "plan_tree_test"
  "plan_tree_test.pdb"
  "plan_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
