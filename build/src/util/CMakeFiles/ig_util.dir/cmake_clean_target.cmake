file(REMOVE_RECURSE
  "libig_util.a"
)
