// Brokerage service: classes of offered services + performance history.
//
// "Brokerage services maintain information about classes of services offered
// by the environment, as well as past performance data bases. Though the
// brokerage services make a best effort to maintain accurate information
// regarding the state of resources, such information may be obsolete."
// Containers advertise their hosted service types; dispatchers report
// execution outcomes, building the per-container history that matchmaking
// and soft-deadline reasoning consume. Providers with similar offerings are
// grouped into equivalence classes keyed by their sorted service set.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "agent/agent.hpp"

namespace ig::svc {

/// Past execution record of one container.
struct PerformanceHistory {
  std::size_t successes = 0;
  std::size_t failures = 0;
  double total_duration = 0.0;  ///< virtual seconds across successes

  double success_rate() const noexcept {
    const std::size_t total = successes + failures;
    return total > 0 ? static_cast<double>(successes) / static_cast<double>(total) : 1.0;
  }
  double mean_duration() const noexcept {
    return successes > 0 ? total_duration / static_cast<double>(successes) : 0.0;
  }
};

class BrokerageService : public agent::Agent {
 public:
  explicit BrokerageService(std::string name = "bs") : Agent(std::move(name)) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  // Direct lookups for tests and harnesses.
  std::vector<std::string> providers_of(const std::string& service_type) const;
  const PerformanceHistory* history_of(const std::string& container_id) const;
  /// Equivalence classes: sorted-service-set key -> container ids.
  std::map<std::string, std::vector<std::string>> equivalence_classes() const;

 private:
  void handle_advertise(const agent::AclMessage& message);
  void handle_query_providers(const agent::AclMessage& message);
  void handle_report(const agent::AclMessage& message);
  void handle_query_history(const agent::AclMessage& message);

  /// service type -> advertising containers.
  std::map<std::string, std::vector<std::string>> offers_;
  /// container id -> its advertised services (for equivalence classes).
  std::map<std::string, std::vector<std::string>> advertised_;
  /// container id -> performance history.
  std::map<std::string, PerformanceHistory> history_;
};

}  // namespace ig::svc
