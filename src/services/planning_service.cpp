#include "services/planning_service.hpp"

#include "planner/convert.hpp"
#include "services/protocol.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void PlanningService::on_start() {
  register_with_information_service(*this, platform(), "planning");
  tracker_.bind(
      sim(), [this](AclMessage message) { send(std::move(message)); },
      [this](const DeadLetter& letter) { on_dead_letter(letter); });
}

std::string PlanningService::session_of(const std::string& conversation_id) {
  const auto slash = conversation_id.find('/');
  return slash == std::string::npos ? conversation_id : conversation_id.substr(0, slash);
}

void PlanningService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kPlanRequest) return handle_plan_request(message);
  if (message.protocol == protocols::kReplanRequest) return handle_replan_request(message);
  // Replies to probe queries are routed on Failure as well as Inform: a
  // broken information service / brokerage / container must still decrement
  // the session's pending counters, or the re-planning session stalls
  // forever (it simply contributes no providers / no executable services).
  const bool probe_reply = message.performative == Performative::Inform ||
                           message.performative == Performative::Failure;
  if (message.protocol == protocols::kQueryService && probe_reply)
    return handle_information_reply(message);
  if (message.protocol == protocols::kQueryProviders && probe_reply)
    return handle_provider_reply(message);
  if (message.protocol == protocols::kQueryExecutable && probe_reply)
    return handle_probe_reply(message);
  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

void PlanningService::plan_and_reply(const AclMessage& request,
                                     const wfl::ServiceCatalogue& catalogue) {
  AclMessage reply = request.make_reply(Performative::Inform);
  try {
    const wfl::CaseDescription case_description = wfl::case_from_xml_string(request.content);
    planner::PlanningProblem problem =
        planner::PlanningProblem::from_case(case_description, catalogue);

    planner::GpConfig config = gp_config_;
    // Each planning episode explores from a different (still deterministic)
    // seed, so a re-planning retry does not just reproduce the failed plan.
    config.seed = gp_config_.seed + plans_produced_ * 7919;
    if (request.has_param("seed")) {
      const auto seed = request.param_uint("seed");
      if (!seed.has_value()) {
        send(make_not_understood(request, request.describe_bad_param("seed", "uint")));
        return;
      }
      config.seed = *seed;
    }

    // GP is stochastic: when a run falls short of full goal fitness, retry
    // with fresh seeds before settling for the best attempt.
    planner::GpResult result = planner::run_gp(problem, config);
    for (int attempt = 1; attempt < 3 && result.best_fitness.goal < 1.0; ++attempt) {
      config.seed = config.seed * 6364136223846793005ULL + 1442695040888963407ULL;
      planner::GpResult retry = planner::run_gp(problem, config);
      if (retry.best_fitness.overall > result.best_fitness.overall) result = std::move(retry);
      if (result.best_fitness.goal >= 1.0) break;
    }

    std::string plan_name = case_description.process_name();
    if (plan_name.empty()) plan_name = "plan-" + case_description.name();
    const wfl::ProcessDescription process = planner::to_process(result.best_plan, plan_name);

    ++plans_produced_;
    reply.content = wfl::process_to_xml_string(process);
    reply.params["plan"] = plan_name;
    reply.params["fitness"] = util::format_number(result.best_fitness.overall, 4);
    reply.params["validity-fitness"] = util::format_number(result.best_fitness.validity, 4);
    reply.params["goal-fitness"] = util::format_number(result.best_fitness.goal, 4);
    reply.params["size"] = std::to_string(result.best_fitness.size);

    // Archive the process description in the system knowledge base.
    if (platform().has_agent(names::kPersistentStorage)) {
      AclMessage archive;
      archive.performative = Performative::Request;
      archive.receiver = names::kPersistentStorage;
      archive.protocol = protocols::kStorePut;
      archive.params["key"] = "process/" + plan_name;
      archive.content = reply.content;
      send(std::move(archive));
    }
  } catch (const std::exception& error) {
    reply.performative = Performative::Failure;
    reply.params["error"] = error.what();
  }
  // Charge the GP runtime to the virtual clock before replying.
  schedule(planning_latency_, [this, reply]() mutable { send(std::move(reply)); });
}

void PlanningService::handle_plan_request(const AclMessage& message) {
  IG_LOG_DEBUG("ps") << "planning request from " << message.sender;
  plan_and_reply(message, catalogue_);
}

void PlanningService::handle_replan_request(const AclMessage& message) {
  const std::string session_id = "replan-" + std::to_string(next_session_++);
  ReplanSession session;
  session.original = message;
  for (const auto& service : util::split_trimmed(message.param("failed-services"), ','))
    session.excluded.insert(service);

  if (!message.param_bool("probe", true)) {
    // Method 1: the knowledge is given directly by the coordination service.
    wfl::ServiceCatalogue reduced;
    for (const auto& service : catalogue_.services()) {
      if (session.excluded.count(service.name()) == 0) reduced.add(service);
    }
    plan_and_reply(message, reduced);
    return;
  }

  // Method 2, step 2: ask the information service for a brokerage service.
  sessions_[session_id] = std::move(session);
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kInformation;
  query.protocol = protocols::kQueryService;
  query.conversation_id = session_id + "/info";
  query.params["type"] = "brokerage";
  tracker_.track(std::move(query), probe_policy_);
}

void PlanningService::handle_information_reply(const AclMessage& message) {
  if (!tracker_.settle(message.conversation_id)) return;
  const std::string session_id = session_of(message.conversation_id);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;

  const auto providers = util::split_trimmed(message.param("providers"), ',');
  it->second.brokerage = providers.empty() ? names::kBrokerage : providers.front();
  query_providers(session_id);
}

void PlanningService::query_providers(const std::string& session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ReplanSession& session = it->second;

  // Step 4: ask the brokerage for containers, one query per service type.
  // Each query has its own conversation id so its deadline, retries, and
  // reply are accounted for independently.
  for (const auto& service : catalogue_.services()) {
    if (session.excluded.count(service.name()) > 0) continue;
    session.to_probe.push_back(service.name());
    ++session.pending_provider_queries;
    AclMessage query;
    query.performative = Performative::QueryRef;
    query.receiver = session.brokerage;
    query.protocol = protocols::kQueryProviders;
    query.conversation_id = session_id + "/prov/" + service.name();
    query.params["service"] = service.name();
    tracker_.track(std::move(query), probe_policy_);
  }
  if (session.pending_provider_queries == 0) finish_replan(session_id);
}

void PlanningService::handle_provider_reply(const AclMessage& message) {
  if (!tracker_.settle(message.conversation_id)) return;
  const std::string session_id = session_of(message.conversation_id);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ReplanSession& session = it->second;
  --session.pending_provider_queries;

  const std::string service = message.param("service");
  const auto containers = util::split_trimmed(message.param("containers"), ',');
  // Step 6: probe each advertised container for current executability.
  for (const auto& container : containers) {
    if (!platform().has_agent(container)) continue;
    ++session.pending_probes;
    AclMessage probe;
    probe.performative = Performative::QueryIf;
    probe.receiver = container;
    probe.protocol = protocols::kQueryExecutable;
    probe.conversation_id = session_id + "/probe/" + std::to_string(session.next_probe++);
    probe.params["service"] = service;
    tracker_.track(std::move(probe), probe_policy_);
  }
  if (session.pending_provider_queries == 0 && session.pending_probes == 0)
    finish_replan(session_id);
}

void PlanningService::handle_probe_reply(const AclMessage& message) {
  if (!tracker_.settle(message.conversation_id)) return;
  const std::string session_id = session_of(message.conversation_id);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ReplanSession& session = it->second;
  --session.pending_probes;
  if (message.param_bool("executable", false))
    session.executable.insert(message.param("service"));
  if (session.pending_provider_queries == 0 && session.pending_probes == 0)
    finish_replan(session_id);
}

void PlanningService::on_dead_letter(const DeadLetter& letter) {
  const std::string session_id = session_of(letter.conversation_id);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ReplanSession& session = it->second;
  const auto parts = util::split(letter.conversation_id, '/');
  const std::string kind = parts.size() > 1 ? parts[1] : "";

  if (kind == "info") {
    // The information service is unreachable; fall back to the well-known
    // brokerage name and press on.
    session.brokerage = names::kBrokerage;
    return query_providers(session_id);
  }
  // A lost provider list or a wedged container simply contributes no
  // executable services; the session still converges.
  session.degraded = true;
  if (kind == "prov" && session.pending_provider_queries > 0)
    --session.pending_provider_queries;
  if (kind == "probe" && session.pending_probes > 0) --session.pending_probes;
  if (session.pending_provider_queries == 0 && session.pending_probes == 0)
    finish_replan(session_id);
}

void PlanningService::finish_replan(const std::string& session_id) {
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  ReplanSession session = std::move(it->second);
  sessions_.erase(it);

  // "The activity can be included in the new plan only if there is at least
  // one application container that can provide the execution."
  wfl::ServiceCatalogue reduced;
  for (const auto& service : catalogue_.services()) {
    if (session.excluded.count(service.name()) > 0) continue;
    if (session.executable.count(service.name()) == 0) continue;
    reduced.add(service);
  }
  if (reduced.size() == 0 && session.degraded) {
    // Probing was disrupted (dead letters), not answered: fall back to
    // Method 1 — plan over the static catalogue minus the known-bad
    // services — rather than declare everything non-executable.
    for (const auto& service : catalogue_.services()) {
      if (session.excluded.count(service.name()) == 0) reduced.add(service);
    }
  }
  IG_LOG_DEBUG("ps") << "replan over " << reduced.size() << "/" << catalogue_.size()
                     << " executable services";
  plan_and_reply(session.original, reduced);
}

}  // namespace ig::svc
