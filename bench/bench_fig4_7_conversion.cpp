// Figures 4-7 — Process description versus plan tree for the four
// controller kinds: sequential, concurrent, selective, iterative.
//
// For each canonical fragment the harness prints (a) the partial process
// description and (b) the corresponding plan tree, then verifies the
// round trip process -> tree -> process preserves the graph shape.
#include <cstdio>
#include <string>

#include "planner/convert.hpp"
#include "wfl/flowexpr.hpp"
#include "wfl/structure.hpp"
#include "wfl/validate.hpp"

using namespace ig;

namespace {

bool show(const char* figure, const char* description, const char* text) {
  std::printf("=== %s: %s ===\n", figure, description);
  const wfl::FlowExpr expr = wfl::parse_flow(text);
  const wfl::ProcessDescription process = wfl::lower_to_process(expr, figure);
  std::printf("(a) process description fragment:\n%s",
              process.to_display_string().c_str());
  const planner::PlanNode tree = planner::from_process(process);
  std::printf("(b) corresponding plan tree:\n%s", tree.to_tree_string().c_str());

  const wfl::ProcessDescription relowered = planner::to_process(tree, figure);
  const bool valid = wfl::is_valid(process) && wfl::is_valid(relowered);
  const bool same_shape = relowered.activity_count() == process.activity_count() &&
                          relowered.transition_count() == process.transition_count() &&
                          relowered.end_user_activity_count() ==
                              process.end_user_activity_count();
  std::printf("round trip preserves shape: %s\n\n", valid && same_shape ? "yes" : "NO");
  return valid && same_shape;
}

}  // namespace

int main() {
  bool ok = true;
  ok &= show("Figure 4", "sequential activities", "BEGIN, A; B; C, END");
  ok &= show("Figure 5", "concurrent activities (FORK/JOIN)",
             "BEGIN, {FORK {A} {B} JOIN}, END");
  ok &= show("Figure 6", "selective activities (CHOICE/MERGE)",
             "BEGIN, {CHOICE {X.V > 1} {A} {X.V <= 1} {B} MERGE}, END");
  ok &= show("Figure 7", "iterative activities (MERGE ... CHOICE loop)",
             "BEGIN, {ITERATIVE {COND R.Value > 8} {A; B}}, END");
  std::printf("all four conversions hold: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
