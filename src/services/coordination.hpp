// Coordination service: the abstract ATN machine (Section 2).
//
// "A coordination service receives a case description and controls the
// enactment of the workflow." The service walks the process description as
// a token machine: Begin fires immediately; end-user activities are
// dispatched to application containers located through the matchmaking
// service; Fork triggers all successors; Join waits for all predecessors;
// Merge fires on any predecessor; Choice evaluates its transition guards
// against the current data state and follows one transition.
//
// Failure handling implements Section 3.3's escalation: a failed dispatch is
// retried on other containers (the failed one excluded); when retries are
// exhausted the coordination service triggers re-planning, shipping "all
// available data, including the initial set of data and the data modified,
// or created during the execution" to the planning service, then enacts the
// new plan.
//
// Checkpointing (Section 1: "some of the computational tasks are long
// lasting and require checkpointing"): `checkpoint-case` snapshots a running
// enactment — process, case, accumulated data, and per-activity completion
// counts — as one XML document. `restore-case` replays it: completed
// end-user activities are credited and skipped (their outputs are already in
// the data snapshot), and execution resumes live from the first activity
// without credit. In-flight dispatches at snapshot time are the only lost
// work. A restore request may carry `reset-replans=true` to refund the
// re-planning budget — the enactment engine uses this when it re-admits a
// failed case's checkpoint to a healthy shard, where the old shard's
// failures should not count against the new attempt.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "obs/span.hpp"
#include "services/request_tracker.hpp"
#include "wfl/case_description.hpp"
#include "wfl/process.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {

/// Tunables of the enactment machine.
struct CoordinationConfig {
  int max_retries = 2;          ///< container retries per activity dispatch
  int max_replans = 2;          ///< re-planning episodes per case
  int max_loop_iterations = 8;  ///< guardrail for trivially-true loop guards
  std::string match_strategy = "balanced";
  // Conversation-level reliability (see RequestTracker). Deadlines are
  // generous — on a healthy platform every reply lands well inside them and
  // the cancelled timers change nothing; under chaos they bound how long a
  // dropped message or wedged peer can stall an enactment.
  // The execution deadline must cover the slowest *legitimate* run —
  // staging over a throttled WAN can take many virtual minutes — so the
  // default is deliberately loose; chaos experiments tighten it to match
  // their synthetic workloads.
  RetryPolicy match_policy{30.0, 3, 0.25, 5.0};     ///< matchmaking queries
  RetryPolicy exec_policy{1800.0, 2, 0.5, 10.0};    ///< container dispatches
  RetryPolicy replan_policy{600.0, 2, 0.5, 10.0};   ///< planning requests
};

class CoordinationService : public agent::Agent {
 public:
  explicit CoordinationService(std::string name = "cs", CoordinationConfig config = {})
      : Agent(std::move(name)), config_(config) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  const CoordinationConfig& config() const noexcept { return config_; }

  std::size_t cases_completed() const noexcept { return cases_completed_; }
  std::size_t cases_failed() const noexcept { return cases_failed_; }
  std::size_t replans_triggered() const noexcept { return replans_triggered_; }

  /// The conversation reliability layer (retry/timeout/dead-letter counts).
  const RequestTracker& tracker() const noexcept { return tracker_; }
  /// Seed for retry jitter; engines derive a per-shard stream.
  void set_tracker_seed(std::uint64_t seed) noexcept { tracker_.set_seed(seed); }

  /// Installs an enactment tracer (nullptr disables). The machine then
  /// emits virtual-clock spans: one Case span per enactment, one Activity
  /// span per dispatch (tagged with retries and fault reasons), Barrier
  /// spans for FORK fan-out and JOIN waits, instant Choice spans per
  /// decision, and Iteration spans per loop pass. Not owned; must outlive
  /// the service.
  void set_tracer(obs::SpanTracer* tracer) noexcept { tracer_ = tracer; }

 private:
  struct Enactment {
    std::string id;
    agent::AclMessage original;  ///< the enact-case request to answer
    wfl::ProcessDescription process{"empty"};
    wfl::CaseDescription case_description;
    wfl::DataSet data;  ///< current world data, merged as activities finish
    grid::SimTime started = 0.0;

    std::map<std::string, int> completions;  ///< activity id -> completion count
    std::set<std::string> running;           ///< activity ids dispatched, awaiting reply
    std::map<std::string, std::set<std::string>> join_arrivals;
    std::map<std::string, std::vector<std::string>> excluded_containers;
    std::map<std::string, int> retries;
    /// Restore-time credits: an end-user activity with credit completes
    /// immediately (its outputs are already in `data`).
    std::map<std::string, int> replay_credits;

    /// Incremented on every (re)start; conversation ids carry it so replies
    /// belonging to a superseded plan are recognized and dropped.
    int epoch = 0;

    int activities_replayed = 0;
    int activities_executed = 0;
    int dispatch_failures = 0;
    double total_cost = 0.0;  ///< spot-market charges accumulated so far
    int replans = 0;
    bool awaiting_plan = false;
    bool finished = false;

    // Open-span bookkeeping (all 0 / empty when tracing is off).
    obs::SpanId case_span = 0;
    std::map<std::string, obs::SpanId> activity_spans;   ///< activity id -> open span
    std::map<std::string, obs::SpanId> barrier_spans;    ///< join id -> open wait span
    std::map<std::string, obs::SpanId> iteration_spans;  ///< choice id -> open pass span
  };

  void handle_enact(const agent::AclMessage& message);
  void handle_checkpoint(const agent::AclMessage& message);
  void handle_restore(const agent::AclMessage& message);
  void handle_match_reply(const agent::AclMessage& message);
  void handle_execution_reply(const agent::AclMessage& message);
  void handle_plan_reply(const agent::AclMessage& message);

  void start_enactment(Enactment& enactment);
  void complete_activity(Enactment& enactment, const std::string& activity_id);
  void follow_transition(Enactment& enactment, const wfl::Transition& transition);
  void trigger(Enactment& enactment, const std::string& activity_id,
               const std::string& from_activity);
  void dispatch(Enactment& enactment, const wfl::Activity& activity);
  void handle_dispatch_failure(Enactment& enactment, const std::string& activity_id,
                               const std::string& container, const std::string& reason);
  void request_replanning(Enactment& enactment, const std::string& failed_service);
  void finish(Enactment& enactment, bool success, const std::string& reason);
  /// Closes every open activity/barrier/iteration span with `status`.
  void close_open_spans(Enactment& enactment, const std::string& status);
  /// Escalation when a tracked conversation exhausted its retries.
  void on_dead_letter(const DeadLetter& letter);

  Enactment* find_enactment(const std::string& id);
  /// Conversation ids look like "<enactment>/<kind>/<activity>".
  static std::vector<std::string> split_conversation(const std::string& conversation_id);

  CoordinationConfig config_;
  RequestTracker tracker_;
  obs::SpanTracer* tracer_ = nullptr;  ///< not owned; nullptr = tracing off
  std::map<std::string, Enactment> enactments_;
  std::uint64_t next_enactment_ = 1;
  std::size_t cases_completed_ = 0;
  std::size_t cases_failed_ = 0;
  std::size_t replans_triggered_ = 0;
};

}  // namespace ig::svc
