#include "services/storage.hpp"

#include "services/protocol.hpp"
#include "util/strings.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void PersistentStorageService::put(const std::string& key, std::string value) {
  store_.insert_or_assign(key, std::move(value));
}

const std::string* PersistentStorageService::get(const std::string& key) const {
  auto it = store_.find(key);
  return it != store_.end() ? &it->second : nullptr;
}

std::vector<std::string> PersistentStorageService::keys_with_prefix(
    const std::string& prefix) const {
  // The map is ordered, so every key sharing `prefix` is contiguous: jump to
  // the first candidate and stop at the first key that no longer matches,
  // instead of scanning the whole store.
  std::vector<std::string> keys;
  for (auto it = store_.lower_bound(prefix); it != store_.end(); ++it) {
    if (!util::starts_with(it->first, prefix)) break;
    keys.push_back(it->first);
  }
  return keys;
}

void PersistentStorageService::on_start() {
  register_with_information_service(*this, platform(), "persistent-storage");
}

void PersistentStorageService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kStorePut) {
    put(message.param("key"), message.content);
    AclMessage reply = message.make_reply(Performative::Agree);
    reply.params["key"] = message.param("key");
    send(std::move(reply));
    return;
  }
  if (message.protocol == protocols::kStoreGet) {
    const std::string key = message.param("key");
    const std::string* value = get(key);
    AclMessage reply =
        message.make_reply(value != nullptr ? Performative::Inform : Performative::Failure);
    reply.params["key"] = key;
    if (value != nullptr) reply.content = *value;
    else reply.params["error"] = "no document under key '" + key + "'";
    send(std::move(reply));
    return;
  }
  if (message.protocol == protocols::kStoreList) {
    AclMessage reply = message.make_reply(Performative::Inform);
    reply.params["keys"] = util::join(keys_with_prefix(message.param("prefix")), ",");
    send(std::move(reply));
    return;
  }
  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

}  // namespace ig::svc
