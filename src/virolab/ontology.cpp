#include "virolab/ontology.hpp"

#include "meta/standard.hpp"

namespace ig::virolab {

using meta::Value;
namespace classes = meta::classes;

meta::Ontology make_fig13_ontology() {
  meta::Ontology ontology = meta::standard_grid_ontology();
  ontology.set_name("3DSD-instances");

  // -- Task ------------------------------------------------------------------
  auto& task = ontology.add_instance("T1", classes::kTask);
  task.set("ID", Value("T1"));
  task.set("Name", Value("3DSD"));
  task.set("Owner", Value("UCF"));
  task.set("Process Description", Value("PD-3DSD"));
  task.set("Case Description", Value("CD-3DSD"));
  task.set("Status", Value("Submitted"));
  task.set("Need Planning", Value(false));

  // -- Process description -----------------------------------------------------
  auto& process = ontology.add_instance("PD-3DSD", classes::kProcessDescription);
  process.set("ID", Value("PD-3DSD"));
  process.set("Name", Value("PD-3DSD"));
  process.set("Activity Set",
              Value::list_of({"BEGIN", "POD", "P3DR1", "MERGE", "POR", "FORK", "P3DR2", "P3DR3",
                              "P3DR4", "JOIN", "PSF", "CHOICE", "END"}));
  process.set("Transition Set",
              Value::list_of({"TR1", "TR2", "TR3", "TR4", "TR5", "TR6", "TR7", "TR8", "TR9",
                              "TR10", "TR11", "TR12", "TR13", "TR14", "TR15"}));
  process.set("Creator", Value("Planning Service"));

  // -- Case description ----------------------------------------------------------
  auto& case_description = ontology.add_instance("CD-3DSD", classes::kCaseDescription);
  case_description.set("ID", Value("CD-3DSD"));
  case_description.set("Name", Value("CD-3DSD"));
  case_description.set("Initial Data Set",
                       Value::list_of({"D1", "D2", "D3", "D4", "D5", "D6", "D7"}));
  case_description.set("Result Set", Value::list_of({"D12"}));
  case_description.set("Constraint", Value("Cons1"));
  case_description.set("Goal", Value("resolution file with Value <= 8"));

  // -- Activities (the A1..A13 table) ---------------------------------------------
  struct ActivityRow {
    const char* id;
    const char* name;
    const char* type;
    const char* service;
    std::vector<std::string> inputs;
    std::vector<std::string> outputs;
    const char* constraint;
  };
  const std::vector<ActivityRow> activity_rows = {
      {"A1", "BEGIN", "Begin", "", {}, {}, ""},
      {"A2", "POD", "End-user", "POD", {"D1", "D7"}, {"D8"}, ""},
      {"A3", "P3DR1", "End-user", "P3DR", {"D2", "D7", "D8"}, {"D9"}, ""},
      {"A4", "MERGE", "Merge", "", {}, {}, ""},
      {"A5", "POR", "End-user", "POR", {"D5", "D7", "D8", "D9"}, {"D8"}, ""},
      {"A6", "FORK", "Fork", "", {}, {}, ""},
      {"A7", "P3DR2", "End-user", "P3DR", {"D3", "D7", "D8"}, {"D10"}, ""},
      {"A8", "P3DR3", "End-user", "P3DR", {"D4", "D7", "D8"}, {"D11"}, ""},
      {"A9", "P3DR4", "End-user", "P3DR", {"D2", "D7", "D8"}, {"D9"}, ""},
      {"A10", "JOIN", "Join", "", {}, {}, ""},
      {"A11", "PSF", "End-user", "PSF", {"D10", "D11"}, {"D12"}, "Cons1"},
      {"A12", "CHOICE", "Choice", "", {}, {}, ""},
      {"A13", "END", "End", "", {}, {}, ""},
  };
  for (const auto& row : activity_rows) {
    auto& activity = ontology.add_instance(row.id, classes::kActivity);
    activity.set("ID", Value(row.id));
    activity.set("Name", Value(row.name));
    activity.set("Task ID", Value("T1"));
    activity.set("Type", Value(row.type));
    if (row.service[0] != '\0') activity.set("Service Name", Value(row.service));
    if (!row.inputs.empty()) activity.set("Input Data Set", Value::list_of(row.inputs));
    if (!row.outputs.empty()) activity.set("Output Data Set", Value::list_of(row.outputs));
    if (row.constraint[0] != '\0') activity.set("Constraint", Value(row.constraint));
  }

  // -- Transitions (TR1..TR15) ------------------------------------------------------
  struct TransitionRow {
    const char* id;
    const char* source;
    const char* destination;
  };
  const std::vector<TransitionRow> transition_rows = {
      {"TR1", "BEGIN", "POD"},    {"TR2", "POD", "P3DR1"},   {"TR3", "P3DR1", "MERGE"},
      {"TR4", "MERGE", "POR"},    {"TR5", "POR", "FORK"},    {"TR6", "FORK", "P3DR2"},
      {"TR7", "FORK", "P3DR3"},   {"TR8", "FORK", "P3DR4"},  {"TR9", "P3DR2", "JOIN"},
      {"TR10", "P3DR3", "JOIN"},  {"TR11", "P3DR4", "JOIN"}, {"TR12", "JOIN", "PSF"},
      {"TR13", "PSF", "CHOICE"},  {"TR14", "CHOICE", "MERGE"}, {"TR15", "CHOICE", "END"},
  };
  for (const auto& row : transition_rows) {
    auto& transition = ontology.add_instance(row.id, classes::kTransition);
    transition.set("ID", Value(row.id));
    transition.set("Source Activity", Value(row.source));
    transition.set("Destination Activity", Value(row.destination));
  }

  // -- Data (D1..D12) ------------------------------------------------------------------
  struct DataRow {
    const char* name;
    const char* creator;
    double size_mb;  ///< 0 = unspecified
    const char* classification;
    const char* format;
  };
  const std::vector<DataRow> data_rows = {
      {"D1", "User", 0.003, "POD-Parameter", "Text"},
      {"D2", "User", 0, "P3DR-Parameter", "Text"},
      {"D3", "User", 0, "P3DR-Parameter", "Text"},
      {"D4", "User", 0, "P3DR-Parameter", "Text"},
      {"D5", "User", 0, "POR-Parameter", "Text"},
      {"D6", "User", 0, "PSF-Parameter", "Text"},
      {"D7", "User", 1536.0, "2D Image", "Image Stack"},
      {"D8", "POD, POR", 0, "Orientation File", ""},
      {"D9", "P3DR1,P3DR4", 0, "3D Model", ""},
      {"D10", "P3DR2", 0, "3D Model", ""},
      {"D11", "P3DR3", 0, "3D Model", ""},
      {"D12", "PSF", 0, "Resolution File", ""},
  };
  for (const auto& row : data_rows) {
    auto& data = ontology.add_instance(row.name, classes::kData);
    data.set("Name", Value(row.name));
    data.set("Creator", Value(row.creator));
    if (row.size_mb > 0) data.set("Size", Value(row.size_mb));
    data.set("Classification", Value(row.classification));
    if (row.format[0] != '\0') data.set("Format", Value(row.format));
  }

  // -- Services (with their condition texts C1..C8) -----------------------------------
  struct ServiceRow {
    const char* name;
    std::vector<std::string> inputs;
    const char* input_condition;
    std::vector<std::string> outputs;
    const char* output_condition;
  };
  const std::vector<ServiceRow> service_rows = {
      {"POD",
       {"A", "B"},
       "A.Classification = \"POD-Parameter\" and B.Classification = \"2D Image\"",
       {"C"},
       "C.Classification = \"Orientation File\""},
      {"P3DR",
       {"A", "B", "C"},
       "A.Classification = \"P3DR-Parameter\" and B.Classification = \"2D Image\" and "
       "C.Classification = \"Orientation File\"",
       {"D"},
       "D.Classification = \"3D Model\""},
      {"POR",
       {"A", "B", "C", "D"},
       "A.Classification = \"POR-Parameter\" and B.Classification = \"2D Image\" and "
       "C.Classification = \"Orientation File\" and D.Classification = \"3D Model\"",
       {"E"},
       "E.Classification = \"Orientation File\""},
      {"PSF",
       {"A", "B", "C"},
       "A.Classification = \"PSF-Parameter\" and B.Classification = \"3D Model\" and "
       "C.Classification = \"3D Model\"",
       {"D"},
       "D.Classification = \"Resolution File\""},
  };
  for (const auto& row : service_rows) {
    auto& service = ontology.add_instance(std::string("svc-") + row.name, classes::kService);
    service.set("Name", Value(row.name));
    service.set("Type", Value("End-user computing service"));
    service.set("Input Data Set", Value::list_of(row.inputs));
    service.set("Input Condition", Value(row.input_condition));
    service.set("Output Data Set", Value::list_of(row.outputs));
    service.set("Output Condition", Value(row.output_condition));
  }

  return ontology;
}

}  // namespace ig::virolab
