#include "store/crc32c.hpp"

#include <array>

namespace ig::store {
namespace {

// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // kTables[k][b]: CRC contribution of byte b seen k positions before the
  // end of an 8-byte block (slicing-by-8).
  std::array<std::array<std::uint32_t, 256>, 8> t{};

  constexpr Tables() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit)
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      t[0][i] = crc;
    }
    for (std::uint32_t k = 1; k < 8; ++k)
      for (std::uint32_t i = 0; i < 256; ++i)
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFFu];
  }
};

constexpr Tables kTables{};

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  // Un-finalize the seed so chunked checksumming composes.
  std::uint32_t crc = ~seed;
  const auto& t = kTables.t;
  while (size >= 8) {
    // Assemble the next 8 bytes without alignment assumptions; the
    // little-endian mix below is byte-order independent because each byte
    // goes through its own positional table.
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
          t[4][lo >> 24] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFFu];
  return ~crc;
}

}  // namespace ig::store
