#include "grid/sim.hpp"

namespace ig::grid {

EventId Simulation::schedule(SimTime delay, std::function<void()> action) {
  return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(action));
}

EventId Simulation::schedule_at(SimTime at, std::function<void()> action) {
  if (at < now_) at = now_;
  const EventId id = next_id_++;
  queue_.push(Event{at, next_sequence_++, id});
  actions_.emplace(id, std::move(action));
  return id;
}

bool Simulation::cancel(EventId id) {
  if (actions_.find(id) == actions_.end()) return false;
  cancelled_.insert(id);
  actions_.erase(id);
  return true;
}

bool Simulation::step() {
  while (!queue_.empty()) {
    const Event event = queue_.top();
    queue_.pop();
    auto cancelled = cancelled_.find(event.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    auto action = actions_.find(event.id);
    if (action == actions_.end()) continue;  // defensive; should not happen
    std::function<void()> callback = std::move(action->second);
    actions_.erase(action);
    now_ = event.time;
    ++executed_;
    callback();
    return true;
  }
  return false;
}

std::size_t Simulation::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) ++count;
  return count;
}

std::size_t Simulation::run_until(SimTime until) {
  std::size_t count = 0;
  while (!queue_.empty()) {
    // Peek through cancellations.
    while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
      cancelled_.erase(queue_.top().id);
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().time > until) break;
    if (step()) ++count;
  }
  if (now_ < until) now_ = until;
  return count;
}

}  // namespace ig::grid
