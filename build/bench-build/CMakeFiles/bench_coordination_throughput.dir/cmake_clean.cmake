file(REMOVE_RECURSE
  "../bench/bench_coordination_throughput"
  "../bench/bench_coordination_throughput.pdb"
  "CMakeFiles/bench_coordination_throughput.dir/bench_coordination_throughput.cpp.o"
  "CMakeFiles/bench_coordination_throughput.dir/bench_coordination_throughput.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coordination_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
