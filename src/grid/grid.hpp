// The simulated grid: nodes, containers, network, and topology factories.
//
// This is the substitute for the paper's physical campus grid. It exposes
// the same metadata surface the core services consume — resources grouped in
// administrative domains, application containers advertising service types,
// link characteristics — plus deterministic execution-time and failure
// models so experiments are reproducible.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "grid/container.hpp"
#include "grid/failure.hpp"
#include "grid/network.hpp"
#include "grid/node.hpp"
#include "grid/sim.hpp"
#include "util/rng.hpp"
#include "wfl/service.hpp"

namespace ig::grid {

/// Outcome of executing one activity on a container.
struct ExecutionResult {
  bool success = false;
  SimTime completion_time = 0.0;  ///< virtual time the task finished (or failed)
  std::string failure_reason;
};

class Grid {
 public:
  Grid() = default;
  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  // -- topology --------------------------------------------------------------
  GridNode& add_node(std::string id, std::string name, std::string domain,
                     HardwareSpec hardware);
  ApplicationContainer& add_container(std::string id, std::string node_id);

  GridNode* find_node(std::string_view id) noexcept;
  const GridNode* find_node(std::string_view id) const noexcept;
  ApplicationContainer* find_container(std::string_view id) noexcept;
  const ApplicationContainer* find_container(std::string_view id) const noexcept;

  const std::vector<std::unique_ptr<GridNode>>& nodes() const noexcept { return nodes_; }
  const std::vector<std::unique_ptr<ApplicationContainer>>& containers() const noexcept {
    return containers_;
  }

  NetworkModel& network() noexcept { return network_; }
  const NetworkModel& network() const noexcept { return network_; }

  // -- queries ----------------------------------------------------------------
  /// Containers currently able to execute `service_name` (hosted + available
  /// + node up).
  std::vector<const ApplicationContainer*> containers_hosting(std::string_view service_name) const;
  /// All containers advertising the service, regardless of availability.
  std::vector<const ApplicationContainer*> containers_advertising(
      std::string_view service_name) const;

  std::vector<std::string> domains() const;

  // -- execution model ----------------------------------------------------------
  /// Executes `service` on `container` at virtual time `now` with inputs of
  /// total size `input_size_mb` shipped from `data_domain`. Samples failure
  /// from the injector; on success the node's queue advances.
  ExecutionResult execute(Simulation& sim, FailureInjector& injector,
                          const wfl::ServiceType& service, const std::string& container_id,
                          double input_size_mb, const std::string& data_domain);

  /// Marks a container (and optionally later restores it).
  void set_container_available(std::string_view container_id, bool available);
  /// Marks a node up/down; containers on a down node cannot execute.
  void set_node_state(std::string_view node_id, NodeState state);

  std::string to_display_string() const;

 private:
  std::vector<std::unique_ptr<GridNode>> nodes_;
  std::vector<std::unique_ptr<ApplicationContainer>> containers_;
  NetworkModel network_;
};

/// Parameters for the synthetic topology factory.
struct TopologyParams {
  int domains = 3;
  int nodes_per_domain = 4;
  int containers_per_node = 1;
  double min_speed = 0.5;       ///< slowest node speed
  double max_speed = 4.0;       ///< fastest node speed
  double container_failure_probability = 0.0;
  /// Service types each container hosts are drawn from this catalogue;
  /// every service is guaranteed at least one host.
  std::vector<std::string> service_names;
  int services_per_container = 2;
};

/// Builds a heterogeneous demo grid ("the resource-rich environment is
/// highly heterogeneous"): speeds, bandwidths and latencies vary per node,
/// domains are linked by slower WAN links.
void build_topology(Grid& grid, const TopologyParams& params, util::Rng& rng);

}  // namespace ig::grid
