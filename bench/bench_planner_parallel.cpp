// Parallel planning engine: serial-vs-parallel speedup, fitness-memo hit
// rate, a legacy-pool vs work-stealing-job-system scheduler grid, and a
// bitwise determinism check across thread counts and schedulers.
//
// Headline configurations of the Table 1 virolab experiment:
//
//   serial/no-memo   threads=1, memoize=false  (the pre-engine baseline)
//   serial           threads=1, memoize=true
//   parallel         threads=4 on the job system (the production path)
//
// Then a grid: threads in {2, 4, 8} on both schedulers (threads=1 is the
// shared serial row — both schedulers bypass their pool at one thread),
// reporting per-point speedup over serial and the job system's steal rate.
//
// Pass criteria: every parallel point is bitwise-identical to serial for
// every seed, and the memo reports hits (elites/clones are being skipped).
// The >= 2x speedup claim is asserted only when the machine actually has
// >= 4 hardware threads; on smaller machines the ratio is informational.
#include <cstdio>

#include "bench_json.hpp"
#include "gp_sweep.hpp"
#include "sched/job_system.hpp"
#include "util/stopwatch.hpp"

using namespace ig;

namespace {

struct Measurement {
  double seconds = 0.0;
  double mean_fitness = 0.0;
  std::size_t evaluations = 0;
  std::size_t memo_hits = 0;
  sched::JobStats sched_stats;  ///< summed across runs; zero on legacy/serial
  std::vector<planner::GpResult> results;
};

Measurement measure(const planner::PlanningProblem& problem, std::size_t threads, bool memoize,
                    int runs, planner::GpScheduler scheduler = planner::GpScheduler::JobSystem) {
  Measurement m;
  util::Stopwatch watch;
  for (int run = 0; run < runs; ++run) {
    planner::GpConfig config;  // Table 1 defaults: pop 200, 20 generations
    config.seed = 100 + static_cast<std::uint64_t>(run);
    config.threads = threads;
    config.scheduler = scheduler;
    config.evaluation.memoize = memoize;
    m.results.push_back(planner::run_gp(problem, config));
  }
  m.seconds = watch.elapsed_seconds();
  for (const planner::GpResult& result : m.results) {
    m.mean_fitness += result.best_fitness.overall / runs;
    m.evaluations += result.evaluations;
    m.memo_hits += result.memo_hits;
    m.sched_stats.executed += result.scheduler_stats.executed;
    m.sched_stats.stolen += result.scheduler_stats.stolen;
    m.sched_stats.steal_attempts += result.scheduler_stats.steal_attempts;
  }
  return m;
}

bool identical(const planner::GpResult& a, const planner::GpResult& b) {
  if (!(a.best_plan == b.best_plan)) return false;
  if (a.best_fitness.overall != b.best_fitness.overall) return false;
  if (a.evaluations != b.evaluations) return false;
  if (a.history.size() != b.history.size()) return false;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    if (a.history[i].best_fitness != b.history[i].best_fitness ||
        a.history[i].mean_fitness != b.history[i].mean_fitness ||
        a.history[i].best_size != b.history[i].best_size)
      return false;
  }
  return true;
}

const char* scheduler_name(planner::GpScheduler scheduler) {
  return scheduler == planner::GpScheduler::JobSystem ? "jobsys" : "legacy";
}

}  // namespace

int main() {
  const planner::PlanningProblem problem = bench::virolab_problem();
  const std::size_t hardware = sched::JobSystem::hardware_threads();
  const std::size_t parallel_threads = 4;
  constexpr int kRuns = 3;

  std::printf("Parallel GP planning engine, virolab problem, Table 1 parameters, %d runs\n",
              kRuns);
  std::printf("hardware threads: %zu\n\n", hardware);

  const Measurement baseline = measure(problem, 1, false, kRuns);
  const Measurement serial = measure(problem, 1, true, kRuns);
  const Measurement parallel = measure(problem, parallel_threads, true, kRuns);

  const double memo_speedup = baseline.seconds / serial.seconds;
  const double thread_speedup = serial.seconds / parallel.seconds;
  const double hit_rate =
      serial.evaluations > 0
          ? static_cast<double>(serial.memo_hits) / static_cast<double>(serial.evaluations)
          : 0.0;

  std::printf("%-22s %-9s %-12s %-12s %s\n", "configuration", "time(s)", "evals", "memo-hits",
              "mean-fitness");
  std::printf("%-22s %-9.2f %-12zu %-12zu %.4f\n", "serial, no memo", baseline.seconds,
              baseline.evaluations, baseline.memo_hits, baseline.mean_fitness);
  std::printf("%-22s %-9.2f %-12zu %-12zu %.4f\n", "serial (threads=1)", serial.seconds,
              serial.evaluations, serial.memo_hits, serial.mean_fitness);
  std::printf("threads=%-14zu %-9.2f %-12zu %-12zu %.4f\n", parallel_threads, parallel.seconds,
              parallel.evaluations, parallel.memo_hits, parallel.mean_fitness);

  std::printf("\nmemo speedup (serial vs no-memo):    %.2fx\n", memo_speedup);
  std::printf("thread speedup (%zu threads vs 1):    %.2fx\n", parallel_threads, thread_speedup);
  std::printf("memo hit rate (serial):              %.1f%%\n", 100.0 * hit_rate);

  bool deterministic = true;
  for (int run = 0; run < kRuns; ++run)
    if (!identical(serial.results[run], parallel.results[run])) deterministic = false;
  std::printf("threads=%zu bitwise-identical to threads=1: %s\n", parallel_threads,
              deterministic ? "yes" : "NO");

  // -- scheduler grid: legacy fixed pool vs work-stealing job system --
  std::printf("\n%-10s %-8s %-9s %-9s %-11s %s\n", "scheduler", "threads", "time(s)",
              "speedup", "steal-rate", "identical");
  std::printf("%-10s %-8d %-9.2f %-9s %-11s %s\n", "(serial)", 1, serial.seconds, "1.00x",
              "-", "yes");
  for (const planner::GpScheduler scheduler :
       {planner::GpScheduler::LegacyPool, planner::GpScheduler::JobSystem}) {
    for (const std::size_t threads : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const Measurement point = measure(problem, threads, true, kRuns, scheduler);
      bool point_identical = true;
      for (int run = 0; run < kRuns; ++run)
        if (!identical(serial.results[run], point.results[run])) point_identical = false;
      deterministic = deterministic && point_identical;
      const double speedup = point.seconds > 0.0 ? serial.seconds / point.seconds : 0.0;
      char speedup_text[32];
      std::snprintf(speedup_text, sizeof speedup_text, "%.2fx", speedup);
      char steal_text[32];
      if (scheduler == planner::GpScheduler::JobSystem)
        std::snprintf(steal_text, sizeof steal_text, "%.1f%%",
                      100.0 * point.sched_stats.steal_rate());
      else
        std::snprintf(steal_text, sizeof steal_text, "-");
      std::printf("%-10s %-8zu %-9.2f %-9s %-11s %s\n", scheduler_name(scheduler), threads,
                  point.seconds, speedup_text, steal_text, point_identical ? "yes" : "NO");

      bench::JsonRecord grid("bench_planner_parallel_grid");
      grid.add("scheduler", std::string(scheduler_name(scheduler)))
          .add("threads", threads)
          .add("seconds", point.seconds)
          .add("speedup_vs_serial", speedup)
          .add("jobs_executed", static_cast<std::size_t>(point.sched_stats.executed))
          .add("jobs_stolen", static_cast<std::size_t>(point.sched_stats.stolen))
          .add("steal_rate", point.sched_stats.steal_rate())
          .add("deterministic", std::string(point_identical ? "true" : "false"));
      grid.append_to();
    }
  }

  bench::JsonRecord record("bench_planner_parallel");
  record.add("runs", static_cast<std::size_t>(kRuns))
      .add("hardware_threads", hardware)
      .add("parallel_threads", parallel_threads)
      .add("serial_no_memo_s", baseline.seconds)
      .add("serial_s", serial.seconds)
      .add("parallel_s", parallel.seconds)
      .add("memo_speedup", memo_speedup)
      .add("thread_speedup", thread_speedup)
      .add("memo_hit_rate", hit_rate)
      .add("mean_fitness", serial.mean_fitness)
      .add("steal_rate", parallel.sched_stats.steal_rate())
      .add("evals_per_sec_serial",
           serial.seconds > 0 ? serial.evaluations / serial.seconds : 0.0)
      .add("evals_per_sec_parallel",
           parallel.seconds > 0 ? parallel.evaluations / parallel.seconds : 0.0)
      .add("deterministic", std::string(deterministic ? "true" : "false"));
  record.append_to();

  bool ok = deterministic && hit_rate > 0.0;
  if (hardware >= parallel_threads) {
    const bool fast_enough = thread_speedup >= 2.0;
    std::printf("speedup target (>= 2x at %zu threads): %s\n", parallel_threads,
                fast_enough ? "met" : "NOT met");
    ok = ok && fast_enough;
  } else {
    std::printf("speedup target skipped: only %zu hardware thread(s) available\n", hardware);
  }
  std::printf("pass: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
