file(REMOVE_RECURSE
  "CMakeFiles/ig_virolab.dir/catalogue.cpp.o"
  "CMakeFiles/ig_virolab.dir/catalogue.cpp.o.d"
  "CMakeFiles/ig_virolab.dir/kernels.cpp.o"
  "CMakeFiles/ig_virolab.dir/kernels.cpp.o.d"
  "CMakeFiles/ig_virolab.dir/ontology.cpp.o"
  "CMakeFiles/ig_virolab.dir/ontology.cpp.o.d"
  "CMakeFiles/ig_virolab.dir/workflow.cpp.o"
  "CMakeFiles/ig_virolab.dir/workflow.cpp.o.d"
  "libig_virolab.a"
  "libig_virolab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_virolab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
