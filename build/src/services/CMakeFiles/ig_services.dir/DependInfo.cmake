
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/authentication.cpp" "src/services/CMakeFiles/ig_services.dir/authentication.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/authentication.cpp.o.d"
  "/root/repo/src/services/brokerage.cpp" "src/services/CMakeFiles/ig_services.dir/brokerage.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/brokerage.cpp.o.d"
  "/root/repo/src/services/container_agent.cpp" "src/services/CMakeFiles/ig_services.dir/container_agent.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/container_agent.cpp.o.d"
  "/root/repo/src/services/coordination.cpp" "src/services/CMakeFiles/ig_services.dir/coordination.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/coordination.cpp.o.d"
  "/root/repo/src/services/environment.cpp" "src/services/CMakeFiles/ig_services.dir/environment.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/environment.cpp.o.d"
  "/root/repo/src/services/information.cpp" "src/services/CMakeFiles/ig_services.dir/information.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/information.cpp.o.d"
  "/root/repo/src/services/matchmaking.cpp" "src/services/CMakeFiles/ig_services.dir/matchmaking.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/matchmaking.cpp.o.d"
  "/root/repo/src/services/monitoring.cpp" "src/services/CMakeFiles/ig_services.dir/monitoring.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/monitoring.cpp.o.d"
  "/root/repo/src/services/ontology_service.cpp" "src/services/CMakeFiles/ig_services.dir/ontology_service.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/ontology_service.cpp.o.d"
  "/root/repo/src/services/planning_service.cpp" "src/services/CMakeFiles/ig_services.dir/planning_service.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/planning_service.cpp.o.d"
  "/root/repo/src/services/scheduling.cpp" "src/services/CMakeFiles/ig_services.dir/scheduling.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/scheduling.cpp.o.d"
  "/root/repo/src/services/simulation_service.cpp" "src/services/CMakeFiles/ig_services.dir/simulation_service.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/simulation_service.cpp.o.d"
  "/root/repo/src/services/storage.cpp" "src/services/CMakeFiles/ig_services.dir/storage.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/storage.cpp.o.d"
  "/root/repo/src/services/user_interface.cpp" "src/services/CMakeFiles/ig_services.dir/user_interface.cpp.o" "gcc" "src/services/CMakeFiles/ig_services.dir/user_interface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/ig_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ig_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/wfl/CMakeFiles/ig_wfl.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/ig_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/ig_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/virolab/CMakeFiles/ig_virolab.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
