# Empty dependencies file for ig_meta.
# This may be replaced when dependencies are built.
