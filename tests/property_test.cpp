// Property-based sweeps (parameterized over seeds): round-trip invariants
// and structural contracts that must hold for *any* input, not just the
// hand-picked fixtures of the per-module suites.
#include <gtest/gtest.h>

#include <algorithm>

#include "grid/sim.hpp"
#include "planner/convert.hpp"
#include "planner/evaluate.hpp"
#include "planner/gp.hpp"
#include "planner/operators.hpp"
#include "services/scheduling.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "virolab/catalogue.hpp"
#include "wfl/flowexpr.hpp"
#include "wfl/structure.hpp"
#include "wfl/validate.hpp"
#include "wfl/xml_io.hpp"

namespace ig {
namespace {

// ---------------------------------------------------------------------------
// Random generators
// ---------------------------------------------------------------------------

meta::Value random_value(util::Rng& rng) {
  switch (rng.next_below(3)) {
    case 0: {
      const char* words[] = {"2D Image", "3D Model", "Orientation File", "Text", "x&y<z"};
      return meta::Value(words[rng.next_below(5)]);
    }
    case 1:
      // Multiples of 0.25 render and re-parse exactly.
      return meta::Value(static_cast<double>(rng.next_int(-40, 40)) * 0.25);
    default:
      return meta::Value(rng.next_bool(0.5));
  }
}

wfl::Condition random_condition(util::Rng& rng, int depth) {
  if (depth <= 0 || rng.next_bool(0.4)) {
    const char* variables[] = {"A", "B", "C", "D", "R"};
    const char* properties[] = {"Classification", "Value", "Size", "Format"};
    const wfl::CompareOp ops[] = {wfl::CompareOp::Less,      wfl::CompareOp::Greater,
                                  wfl::CompareOp::Equal,     wfl::CompareOp::NotEqual,
                                  wfl::CompareOp::LessEqual, wfl::CompareOp::GreaterEqual};
    return wfl::Condition::comparison(variables[rng.next_below(5)],
                                      properties[rng.next_below(4)], ops[rng.next_below(6)],
                                      random_value(rng));
  }
  switch (rng.next_below(3)) {
    case 0:
      return wfl::Condition::conjunction(random_condition(rng, depth - 1),
                                         random_condition(rng, depth - 1));
    case 1:
      return wfl::Condition::disjunction(random_condition(rng, depth - 1),
                                         random_condition(rng, depth - 1));
    default:
      return wfl::Condition::negation(random_condition(rng, depth - 1));
  }
}

wfl::DataSpec random_data(util::Rng& rng, int index) {
  wfl::DataSpec data("item-" + std::to_string(index));
  const char* classifications[] = {"2D Image", "3D Model", "Orientation File",
                                   "Resolution File", "POD-Parameter"};
  data.with_classification(classifications[rng.next_below(5)]);
  if (rng.next_bool(0.7))
    data.with("Value", meta::Value(static_cast<double>(rng.next_int(0, 20))));
  if (rng.next_bool(0.5))
    data.with("Size", meta::Value(static_cast<double>(rng.next_int(1, 2048))));
  return data;
}

// ---------------------------------------------------------------------------
// Condition properties
// ---------------------------------------------------------------------------

class ConditionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConditionProperty, RenderParseRoundTrip) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const wfl::Condition original = random_condition(rng, 4);
    const wfl::Condition reparsed = wfl::Condition::parse(original.to_string());
    EXPECT_TRUE(original == reparsed) << original.to_string();
  }
}

TEST_P(ConditionProperty, EvaluationIsDeterministic) {
  util::Rng rng(GetParam());
  wfl::DataSet state;
  for (int i = 0; i < 6; ++i) state.put(random_data(rng, i));
  for (int i = 0; i < 50; ++i) {
    const wfl::Condition condition = random_condition(rng, 3);
    const bool first = wfl::evaluate_against_state(condition, state);
    const bool second = wfl::evaluate_against_state(condition, state);
    EXPECT_EQ(first, second);
  }
}

TEST_P(ConditionProperty, NegationInvertsUnderFullBindings) {
  util::Rng rng(GetParam());
  wfl::DataSet state;
  // Bind every variable name the generator can emit.
  for (const char* name : {"A", "B", "C", "D", "R"}) {
    wfl::DataSpec data = random_data(rng, 0);
    data.set_name(name);
    state.put(data);
  }
  const wfl::Bindings bindings = wfl::self_bindings(state);
  for (int i = 0; i < 50; ++i) {
    const wfl::Condition condition = random_condition(rng, 3);
    EXPECT_NE(condition.evaluate(bindings),
              wfl::Condition::negation(condition).evaluate(bindings));
  }
}

TEST_P(ConditionProperty, ConjunctsConjoinBackToSameTruth) {
  util::Rng rng(GetParam());
  wfl::DataSet state;
  for (const char* name : {"A", "B", "C", "D", "R"}) {
    wfl::DataSpec data = random_data(rng, 0);
    data.set_name(name);
    state.put(data);
  }
  const wfl::Bindings bindings = wfl::self_bindings(state);
  for (int i = 0; i < 50; ++i) {
    const wfl::Condition condition = random_condition(rng, 3);
    bool conjunction_truth = true;
    for (const auto& conjunct : condition.conjuncts())
      conjunction_truth = conjunction_truth && conjunct.evaluate(bindings);
    EXPECT_EQ(conjunction_truth, condition.evaluate(bindings)) << condition.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionProperty, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

// ---------------------------------------------------------------------------
// Plan tree / process round-trip properties
// ---------------------------------------------------------------------------

class TreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeProperty, RandomTreesLowerToValidProcesses) {
  util::Rng rng(GetParam());
  const auto catalogue = virolab::make_catalogue();
  for (int i = 0; i < 30; ++i) {
    const planner::PlanNode tree = planner::random_tree(rng, catalogue, 30);
    const wfl::ProcessDescription process = planner::to_process(tree, "prop");
    EXPECT_TRUE(wfl::is_valid(process))
        << tree.to_tree_string() << wfl::to_string(wfl::validate(process));
  }
}

TEST_P(TreeProperty, LiftLowerIsIdentityOnText) {
  util::Rng rng(GetParam());
  const auto catalogue = virolab::make_catalogue();
  for (int i = 0; i < 30; ++i) {
    const planner::PlanNode tree = planner::random_tree(rng, catalogue, 30);
    const wfl::ProcessDescription process = planner::to_process(tree, "prop");
    const planner::PlanNode lifted = planner::from_process(process);
    EXPECT_EQ(planner::to_flow_expr(lifted).to_text(), planner::to_flow_expr(tree).to_text());
  }
}

TEST_P(TreeProperty, FlowTextRoundTripsThroughParser) {
  util::Rng rng(GetParam());
  const auto catalogue = virolab::make_catalogue();
  for (int i = 0; i < 30; ++i) {
    const planner::PlanNode tree = planner::random_tree(rng, catalogue, 25);
    const wfl::FlowExpr expr = planner::to_flow_expr(tree);
    const wfl::FlowExpr reparsed = wfl::parse_flow(expr.to_text());
    EXPECT_TRUE(expr == reparsed) << expr.to_text();
  }
}

TEST_P(TreeProperty, ProcessXmlRoundTripPreservesGraph) {
  util::Rng rng(GetParam());
  const auto catalogue = virolab::make_catalogue();
  for (int i = 0; i < 20; ++i) {
    const planner::PlanNode tree = planner::random_tree(rng, catalogue, 25);
    const wfl::ProcessDescription process = planner::to_process(tree, "prop");
    const wfl::ProcessDescription restored =
        wfl::process_from_xml_string(wfl::process_to_xml_string(process));
    EXPECT_EQ(restored.activity_count(), process.activity_count());
    EXPECT_EQ(restored.transition_count(), process.transition_count());
    // Lifting the restored graph yields the same expression.
    EXPECT_EQ(planner::to_flow_expr(planner::from_process(restored)).to_text(),
              planner::to_flow_expr(tree).to_text());
  }
}

TEST_P(TreeProperty, FitnessComponentsWithinBounds) {
  util::Rng rng(GetParam());
  const planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::PlanEvaluator evaluator(problem);
  for (int i = 0; i < 30; ++i) {
    const planner::PlanNode tree = planner::random_tree(rng, problem.catalogue, 40);
    const planner::Fitness fitness = evaluator.evaluate(tree);
    EXPECT_GE(fitness.validity, 0.0);
    EXPECT_LE(fitness.validity, 1.0);
    EXPECT_GE(fitness.goal, 0.0);
    EXPECT_LE(fitness.goal, 1.0);
    EXPECT_GE(fitness.representation, 0.0);
    EXPECT_LT(fitness.representation, 1.0);
    EXPECT_GE(fitness.overall, 0.0);
    EXPECT_LE(fitness.overall, 1.0);
    EXPECT_GE(fitness.flows, 1u);
    EXPECT_LE(fitness.flows, evaluator.config().max_flows);
  }
}

TEST_P(TreeProperty, CrossoverChildrenStayWellFormed) {
  util::Rng rng(GetParam());
  const auto catalogue = virolab::make_catalogue();
  for (int i = 0; i < 50; ++i) {
    const planner::PlanNode a = planner::random_tree(rng, catalogue, 35);
    const planner::PlanNode b = planner::random_tree(rng, catalogue, 35);
    const auto result = planner::crossover(a, b, rng, 0.9, 40);
    if (!result.applied) continue;
    EXPECT_EQ(planner::check_structure(result.first), "");
    EXPECT_EQ(planner::check_structure(result.second), "");
    EXPECT_LE(result.first.size(), 40u);
    EXPECT_LE(result.second.size(), 40u);
    EXPECT_EQ(result.first.size() + result.second.size(), a.size() + b.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty, ::testing::Values(11, 22, 33, 44, 55));

// ---------------------------------------------------------------------------
// Data / XML properties
// ---------------------------------------------------------------------------

class DataProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DataProperty, DatasetXmlRoundTrip) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    wfl::DataSet original;
    const int count = static_cast<int>(rng.next_int(0, 10));
    for (int i = 0; i < count; ++i) original.put(random_data(rng, i));
    const wfl::DataSet restored =
        wfl::dataset_from_xml_string(wfl::dataset_to_xml_string(original));
    EXPECT_EQ(restored, original);
  }
}

TEST_P(DataProperty, XmlEscapeRoundTripsArbitraryAscii) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    std::string text;
    const int length = static_cast<int>(rng.next_int(0, 60));
    for (int i = 0; i < length; ++i)
      text += static_cast<char>(rng.next_int(32, 126));
    EXPECT_EQ(xml::unescape(xml::escape(text)), text) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataProperty, ::testing::Values(7, 14, 28));

// ---------------------------------------------------------------------------
// Simulation determinism
// ---------------------------------------------------------------------------

class GpDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpDeterminism, SameSeedSameBestPlan) {
  const planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::GpConfig config;
  config.population_size = 30;
  config.generations = 6;
  config.seed = GetParam();
  const planner::GpResult a = planner::run_gp(problem, config);
  const planner::GpResult b = planner::run_gp(problem, config);
  EXPECT_EQ(a.best_plan, b.best_plan);
  EXPECT_DOUBLE_EQ(a.best_fitness.overall, b.best_fitness.overall);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpDeterminism, ::testing::Values(100, 200, 300, 400));

// ---------------------------------------------------------------------------
// Scheduling properties
// ---------------------------------------------------------------------------

class SchedulingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulingProperty, OptimalNeverWorseThanLpt) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<svc::ScheduledTask> tasks;
    const int count = static_cast<int>(rng.next_int(1, 9));
    for (int i = 0; i < count; ++i)
      tasks.push_back({"t" + std::to_string(i), rng.next_double(0.5, 10.0), -1});
    std::vector<double> speeds;
    const int machines = static_cast<int>(rng.next_int(1, 4));
    for (int m = 0; m < machines; ++m) speeds.push_back(rng.next_double(0.5, 4.0));

    const svc::Schedule lpt = svc::schedule_lpt(tasks, speeds);
    const svc::Schedule optimal = svc::schedule_optimal(tasks, speeds);
    EXPECT_LE(optimal.makespan, lpt.makespan + 1e-9);
    // Every task is assigned to a real machine in both schedules.
    for (const auto& task : lpt.tasks) {
      EXPECT_GE(task.assigned_machine, 0);
      EXPECT_LT(task.assigned_machine, machines);
    }
    for (const auto& task : optimal.tasks) {
      EXPECT_GE(task.assigned_machine, 0);
      EXPECT_LT(task.assigned_machine, machines);
    }
  }
}

TEST_P(SchedulingProperty, MakespanMatchesAssignment) {
  util::Rng rng(GetParam() ^ 0xABCDEF);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<svc::ScheduledTask> tasks;
    const int count = static_cast<int>(rng.next_int(1, 10));
    for (int i = 0; i < count; ++i)
      tasks.push_back({"t" + std::to_string(i), rng.next_double(0.5, 10.0), -1});
    std::vector<double> speeds{1.0, 2.0};
    const svc::Schedule schedule = svc::schedule_lpt(tasks, speeds);
    std::vector<double> finish(speeds.size(), 0.0);
    for (const auto& task : schedule.tasks)
      finish[static_cast<std::size_t>(task.assigned_machine)] +=
          task.work / speeds[static_cast<std::size_t>(task.assigned_machine)];
    EXPECT_NEAR(*std::max_element(finish.begin(), finish.end()), schedule.makespan, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulingProperty, ::testing::Values(3, 6, 9));

// ---------------------------------------------------------------------------
// Simulation ordering properties
// ---------------------------------------------------------------------------

class SimulationProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulationProperty, EventsFireInNonDecreasingTimeOrder) {
  util::Rng rng(GetParam());
  grid::Simulation sim;
  std::vector<double> fired;
  for (int i = 0; i < 200; ++i) {
    sim.schedule(rng.next_double(0, 100), [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 200u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST_P(SimulationProperty, CancelledEventsNeverFire) {
  util::Rng rng(GetParam() ^ 0x1111);
  grid::Simulation sim;
  int fired = 0;
  std::vector<grid::EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(sim.schedule(rng.next_double(0, 10), [&fired] { ++fired; }));
  int cancelled = 0;
  for (const auto id : ids) {
    if (rng.next_bool(0.5)) {
      sim.cancel(id);
      ++cancelled;
    }
  }
  sim.run();
  EXPECT_EQ(fired, 100 - cancelled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulationProperty, ::testing::Values(17, 34, 51));

// ---------------------------------------------------------------------------
// Statistics properties
// ---------------------------------------------------------------------------

class StatsProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsProperty, PercentilesAreMonotoneAndBounded) {
  util::Rng rng(GetParam());
  util::SampleSet samples;
  for (int i = 0; i < 200; ++i) samples.add(rng.next_double(-50, 50));
  double previous = samples.percentile(0);
  EXPECT_DOUBLE_EQ(previous, samples.min());
  for (double q = 5; q <= 100; q += 5) {
    const double current = samples.percentile(q);
    EXPECT_GE(current, previous - 1e-12);
    previous = current;
  }
  EXPECT_DOUBLE_EQ(samples.percentile(100), samples.max());
  EXPECT_GE(samples.mean(), samples.min());
  EXPECT_LE(samples.mean(), samples.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Values(41, 82));

}  // namespace
}  // namespace ig
