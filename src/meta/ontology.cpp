#include "meta/ontology.hpp"

#include <algorithm>

namespace ig::meta {

namespace {
const Value kNone{};
}  // namespace

// ---------------------------------------------------------------------------
// OntologyClass
// ---------------------------------------------------------------------------

void OntologyClass::add_slot(SlotDef slot) {
  if (find_own_slot(slot.name) != nullptr)
    throw OntologyError("duplicate slot '" + slot.name + "' on class '" + name_ + "'");
  slots_.push_back(std::move(slot));
}

const SlotDef* OntologyClass::find_own_slot(std::string_view name) const noexcept {
  for (const auto& slot : slots_) {
    if (slot.name == name) return &slot;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Instance
// ---------------------------------------------------------------------------

void Instance::set(std::string_view slot, Value value) {
  values_.insert_or_assign(std::string(slot), std::move(value));
}

const Value& Instance::get(std::string_view slot) const noexcept {
  auto it = values_.find(slot);
  return it != values_.end() ? it->second : kNone;
}

bool Instance::has(std::string_view slot) const noexcept {
  auto it = values_.find(slot);
  return it != values_.end() && !it->second.is_none();
}

std::string Instance::get_string(std::string_view slot, std::string_view fallback) const {
  const Value& value = get(slot);
  return value.type() == ValueType::String ? value.as_string() : std::string(fallback);
}

double Instance::get_number(std::string_view slot, double fallback) const {
  const Value& value = get(slot);
  return value.type() == ValueType::Number ? value.as_number() : fallback;
}

std::vector<std::string> Instance::get_string_list(std::string_view slot) const {
  return get(slot).as_string_list();
}

// ---------------------------------------------------------------------------
// Ontology
// ---------------------------------------------------------------------------

OntologyClass& Ontology::add_class(std::string name, std::string parent) {
  if (has_class(name)) throw OntologyError("duplicate class '" + name + "'");
  if (!parent.empty() && !has_class(parent))
    throw OntologyError("unknown parent class '" + parent + "' for '" + name + "'");
  classes_.emplace_back(std::move(name), std::move(parent));
  return classes_.back();
}

const OntologyClass* Ontology::find_class(std::string_view name) const noexcept {
  for (const auto& cls : classes_) {
    if (cls.name() == name) return &cls;
  }
  return nullptr;
}

std::vector<const OntologyClass*> Ontology::classes() const {
  std::vector<const OntologyClass*> out;
  out.reserve(classes_.size());
  for (const auto& cls : classes_) out.push_back(&cls);
  return out;
}

std::vector<SlotDef> Ontology::effective_slots(std::string_view class_name) const {
  const OntologyClass* cls = find_class(class_name);
  if (cls == nullptr) throw OntologyError("unknown class '" + std::string(class_name) + "'");
  std::vector<SlotDef> slots;
  if (!cls->parent().empty()) slots = effective_slots(cls->parent());
  for (const auto& slot : cls->own_slots()) {
    // A subclass may refine (override) an inherited slot of the same name.
    auto it = std::find_if(slots.begin(), slots.end(),
                           [&](const SlotDef& s) { return s.name == slot.name; });
    if (it != slots.end()) *it = slot;
    else slots.push_back(slot);
  }
  return slots;
}

bool Ontology::is_subclass_of(std::string_view descendant, std::string_view ancestor) const {
  std::string_view current = descendant;
  while (!current.empty()) {
    if (current == ancestor) return true;
    const OntologyClass* cls = find_class(current);
    if (cls == nullptr) return false;
    current = cls->parent();
  }
  return false;
}

Instance& Ontology::add_instance(std::string id, std::string class_name) {
  if (!has_class(class_name))
    throw OntologyError("cannot instantiate unknown class '" + class_name + "'");
  if (find_instance(id) != nullptr) throw OntologyError("duplicate instance id '" + id + "'");
  instances_.emplace_back(std::move(id), std::move(class_name));
  return instances_.back();
}

const Instance* Ontology::find_instance(std::string_view id) const noexcept {
  for (const auto& instance : instances_) {
    if (instance.id() == id) return &instance;
  }
  return nullptr;
}

Instance* Ontology::find_instance_mutable(std::string_view id) noexcept {
  for (auto& instance : instances_) {
    if (instance.id() == id) return &instance;
  }
  return nullptr;
}

std::vector<const Instance*> Ontology::instances() const {
  std::vector<const Instance*> out;
  out.reserve(instances_.size());
  for (const auto& instance : instances_) out.push_back(&instance);
  return out;
}

std::vector<const Instance*> Ontology::instances_of(std::string_view class_name) const {
  std::vector<const Instance*> out;
  for (const auto& instance : instances_) {
    if (is_subclass_of(instance.class_name(), class_name)) out.push_back(&instance);
  }
  return out;
}

bool Ontology::remove_instance(std::string_view id) {
  auto it = std::find_if(instances_.begin(), instances_.end(),
                         [&](const Instance& i) { return i.id() == id; });
  if (it == instances_.end()) return false;
  instances_.erase(it);
  return true;
}

Ontology Ontology::shell() const {
  Ontology copy(name_);
  copy.classes_ = classes_;
  return copy;
}

namespace {

bool value_matches_type(const Value& value, ValueType type) noexcept {
  return value.type() == type;
}

bool value_allowed(const Value& value, const std::vector<std::string>& allowed) {
  if (allowed.empty()) return true;
  auto ok = [&](const Value& v) {
    return v.type() == ValueType::String &&
           std::find(allowed.begin(), allowed.end(), v.as_string()) != allowed.end();
  };
  if (value.type() == ValueType::List) {
    return std::all_of(value.as_list().begin(), value.as_list().end(), ok);
  }
  return ok(value);
}

}  // namespace

void Ontology::validate_instance(const Instance& instance,
                                 std::vector<ValidationIssue>& issues) const {
  const OntologyClass* cls = find_class(instance.class_name());
  if (cls == nullptr) {
    issues.push_back({instance.id(), "", "unknown class '" + instance.class_name() + "'"});
    return;
  }
  const std::vector<SlotDef> slots = effective_slots(instance.class_name());
  for (const auto& slot : slots) {
    const Value& value = instance.get(slot.name);
    if (value.is_none()) {
      if (slot.required)
        issues.push_back({instance.id(), slot.name, "required slot is not filled"});
      continue;
    }
    if (!value_matches_type(value, slot.type)) {
      issues.push_back({instance.id(), slot.name,
                        "expected " + std::string(to_string(slot.type)) + ", got " +
                            std::string(to_string(value.type()))});
      continue;
    }
    if (!value_allowed(value, slot.allowed_values)) {
      issues.push_back(
          {instance.id(), slot.name, "value '" + value.to_display_string() + "' not allowed"});
    }
  }
  // Slots not declared anywhere on the class chain are facet violations too.
  for (const auto& [name, value] : instance.slots()) {
    (void)value;
    const bool declared = std::any_of(slots.begin(), slots.end(),
                                      [&](const SlotDef& s) { return s.name == name; });
    if (!declared)
      issues.push_back({instance.id(), name, "slot not declared on class '" +
                                                 instance.class_name() + "'"});
  }
}

std::vector<ValidationIssue> Ontology::validate() const {
  std::vector<ValidationIssue> issues;
  for (const auto& instance : instances_) validate_instance(instance, issues);
  return issues;
}

void Ontology::merge(const Ontology& other) {
  for (const auto* cls : other.classes()) {
    const OntologyClass* existing = find_class(cls->name());
    if (existing == nullptr) {
      if (!cls->parent().empty() && !has_class(cls->parent()))
        throw OntologyError("merge: parent class '" + cls->parent() + "' missing");
      classes_.push_back(*cls);
      continue;
    }
    // Same-named classes must agree on their frame definition.
    if (existing->parent() != cls->parent() ||
        existing->own_slots().size() != cls->own_slots().size())
      throw OntologyError("merge: conflicting definitions of class '" + cls->name() + "'");
    for (std::size_t i = 0; i < cls->own_slots().size(); ++i) {
      if (existing->own_slots()[i].name != cls->own_slots()[i].name ||
          existing->own_slots()[i].type != cls->own_slots()[i].type)
        throw OntologyError("merge: conflicting slot on class '" + cls->name() + "'");
    }
  }
  for (const auto* instance : other.instances()) {
    if (find_instance(instance->id()) != nullptr)
      throw OntologyError("merge: duplicate instance id '" + instance->id() + "'");
    instances_.push_back(*instance);
  }
}

}  // namespace ig::meta
