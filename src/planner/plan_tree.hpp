// Plan trees: the GP individual representation (Section 3.4.1).
//
// "A plan tree consists of a group of nodes. The nodes can be either
// terminal nodes or controller nodes. Every terminal node is a leaf ...
// corresponding to an end-user activity. Controller nodes are internal
// nodes and must have at least one child." The four controller kinds are
// sequential, concurrent, selective and iterative; Figure 11 shows the
// iterative node holding its loop body directly as its children.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "wfl/condition.hpp"

namespace ig::planner {

/// One node of a plan tree. Value semantics: copying copies the subtree.
struct PlanNode {
  enum class Kind { Terminal, Sequential, Concurrent, Selective, Iterative };

  Kind kind = Kind::Terminal;

  /// Terminal: the end-user service this activity invokes.
  std::string service;

  /// Controller nodes: the children, executed according to `kind`
  /// (sequential order / any order / one of / repeatedly in order).
  std::vector<PlanNode> children;

  /// Selective: guards[i] selects children[i] during enactment (GP-evolved
  /// trees leave them trivially true; enumeration explores all branches).
  std::vector<wfl::Condition> guards;

  /// Iterative: the continue condition of the loop (trivially true for
  /// GP-evolved trees; bounded unrolling is used during evaluation).
  wfl::Condition continue_condition;

  // -- factories --------------------------------------------------------------
  static PlanNode terminal(std::string service);
  static PlanNode sequential(std::vector<PlanNode> children);
  static PlanNode concurrent(std::vector<PlanNode> children);
  static PlanNode selective(std::vector<PlanNode> children, std::vector<wfl::Condition> guards = {});
  static PlanNode iterative(std::vector<PlanNode> body, wfl::Condition continue_condition = {});

  // -- queries ----------------------------------------------------------------
  bool is_terminal() const noexcept { return kind == Kind::Terminal; }

  /// Total number of nodes (the paper's plan size measure, bounded by Smax).
  std::size_t size() const noexcept;
  std::size_t depth() const noexcept;
  /// Number of terminal (activity) nodes.
  std::size_t terminal_count() const noexcept;

  /// Preorder access: node 0 is this node itself. Throws std::out_of_range.
  const PlanNode& at_preorder(std::size_t index) const;
  PlanNode& at_preorder(std::size_t index);

  /// Replaces the subtree rooted at preorder `index` (0 replaces the whole
  /// tree). Throws std::out_of_range.
  void replace_at_preorder(std::size_t index, PlanNode replacement);

  /// Structural equality (guards compared by canonical text).
  bool operator==(const PlanNode& other) const;

  /// Canonical structural hash, consistent with operator==: equal trees hash
  /// equal. Keys the evaluator's fitness memo, so elites and post-selection
  /// clones are recognized across generations. Covers kind, service name,
  /// child structure (order-sensitive), guards and the continue condition
  /// (by canonical text; the trivially-true condition hashes as a constant
  /// without rendering).
  std::uint64_t hash() const noexcept;

  /// Indented rendering in the style of Figure 11.
  std::string to_tree_string() const;

 private:
  const PlanNode* find_preorder(std::size_t& index) const noexcept;
  PlanNode* find_preorder(std::size_t& index) noexcept;
};

std::string_view to_string(PlanNode::Kind kind) noexcept;

/// Checks the structural invariants of Section 3.4.1: controller nodes have
/// at least one child, terminals have none and name a service, selective
/// guard counts match. Returns a description of the first violation, or an
/// empty string when the tree is well-formed.
std::string check_structure(const PlanNode& tree);

}  // namespace ig::planner
