// Streaming statistics accumulators used by the benchmark harnesses.
//
// Empty-sample queries (mean/min/max/percentile/...) return quiet NaN, not
// 0.0 — a missing measurement must not masquerade as a real zero. Emitters
// (bench_json, the obs exporters) skip or null non-finite values.
#pragma once

#include <cstddef>
#include <vector>

namespace ig::util {

/// Linear-interpolated quantile over an already-sorted sample vector;
/// `q` in [0, 100], clamped. NaN when `sorted` is empty. This is the one
/// interpolation rule shared by SampleSet and the obs histogram snapshot,
/// so percentiles derived from either source agree bitwise on equal data.
double quantile_sorted(const std::vector<double>& sorted, double q) noexcept;

/// Welford-style running mean / variance with min and max tracking.
class RunningStats {
 public:
  void add(double value) noexcept;

  std::size_t count() const noexcept { return count_; }
  /// NaN when empty.
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 with exactly one sample, NaN when
  /// empty.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// NaN when empty.
  double min() const noexcept;
  /// NaN when empty.
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores every sample; supports percentiles. Suited to the small sample
/// counts of the experiment harness (tens to thousands of runs).
///
/// Percentile queries share one cached sorted view, built lazily on the
/// first query after an add() and reused until the next add() — a batch of
/// percentile(50)/percentile(90)/percentile(99) calls sorts once, not three
/// times.
class SampleSet {
 public:
  void add(double value) {
    samples_.push_back(value);
    sorted_valid_ = false;
  }

  std::size_t count() const noexcept { return samples_.size(); }
  /// NaN when empty.
  double mean() const noexcept;
  /// NaN when empty; 0 with exactly one sample.
  double stddev() const noexcept;
  /// NaN when empty.
  double min() const noexcept;
  /// NaN when empty.
  double max() const noexcept;
  /// Linear-interpolated percentile; `q` in [0, 100]. NaN when empty.
  double percentile(double q) const;
  /// Single-pass multi-quantile: one sort (at most), one result per `qs`
  /// entry, same interpolation as percentile().
  std::vector<double> percentiles(const std::vector<double>& qs) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const noexcept { return samples_; }

 private:
  const std::vector<double>& sorted_view() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

}  // namespace ig::util
