// Figure 10 — The process description for the 3D reconstruction of virus
// structures.
//
// Prints the full activity/transition listing (BEGIN..END with the Cons1
// loop), checks the paper's stated inventory — "7 (seven) end-user
// activities and 6 (six) flow control activities", 15 transitions — and
// enacts the workflow once on the simulated grid to show it actually runs.
#include <cstdio>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/validate.hpp"
#include "wfl/xml_io.hpp"

using namespace ig;

namespace {

class Runner : public agent::Agent {
 public:
  using Agent::Agent;
  void on_start() override {
    agent::AclMessage request;
    request.performative = agent::Performative::Request;
    request.receiver = svc::names::kCoordination;
    request.protocol = svc::protocols::kEnactCase;
    request.content = wfl::process_to_xml_string(virolab::make_fig10_process());
    request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
    send(std::move(request));
  }
  void handle_message(const agent::AclMessage& message) override {
    if (message.protocol == svc::protocols::kCaseCompleted) outcome = message;
  }
  agent::AclMessage outcome;
};

}  // namespace

int main() {
  const wfl::ProcessDescription process = virolab::make_fig10_process();

  std::printf("Figure 10: the process description for the 3D reconstruction\n\n");
  std::printf("%s\n", process.to_display_string().c_str());
  std::printf("workflow text form:\n%s\n\n", virolab::make_flow_expr().to_text().c_str());

  const bool counts_ok = process.end_user_activity_count() == 7 &&
                         process.flow_control_activity_count() == 6 &&
                         process.transition_count() == 15;
  std::printf("%-44s paper   measured\n", "");
  std::printf("%-44s 7       %zu\n", "end-user activities", process.end_user_activity_count());
  std::printf("%-44s 6       %zu\n", "flow control activities",
              process.flow_control_activity_count());
  std::printf("%-44s 15      %zu\n", "transitions", process.transition_count());
  std::printf("%-44s valid   %s\n\n", "structural validation",
              wfl::is_valid(process) ? "valid" : "INVALID");

  // Enact it once for real.
  svc::EnvironmentOptions options;
  options.seed = 10;
  auto environment = svc::make_environment(options);
  auto& runner = environment->platform().spawn<Runner>("ui");
  environment->run();
  std::printf("enactment on the simulated grid: success=%s activities=%s makespan=%s\n",
              runner.outcome.param("success").c_str(),
              runner.outcome.param("activities-executed").c_str(),
              runner.outcome.param("makespan").c_str());

  const bool ok = counts_ok && wfl::is_valid(process) &&
                  runner.outcome.param("success") == "true";
  std::printf("figure 10 reproduced: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
