// Well-known agent names and protocol identifiers of the core services.
//
// Core services in the paper are persistent and locatable; here each service
// type has a canonical agent name (replicas get numeric suffixes and
// register their type with the information service).
#pragma once

#include "agent/agent.hpp"
#include "agent/message.hpp"
#include "agent/platform.hpp"

namespace ig::svc {

/// Canonical agent names (Figure 1's service boxes).
namespace names {
inline constexpr const char* kInformation = "is";
inline constexpr const char* kBrokerage = "bs";
inline constexpr const char* kMatchmaking = "ms";
inline constexpr const char* kMonitoring = "mons";
inline constexpr const char* kOntology = "os";
inline constexpr const char* kAuthentication = "as";
inline constexpr const char* kPersistentStorage = "pss";
inline constexpr const char* kScheduling = "schs";
inline constexpr const char* kSimulation = "sims";
inline constexpr const char* kCoordination = "cs";
inline constexpr const char* kPlanning = "ps";
inline constexpr const char* kUserInterface = "ui";
}  // namespace names

/// Protocol identifiers (the `protocol` field of AclMessage).
namespace protocols {
// Information service.
inline constexpr const char* kRegister = "register";
inline constexpr const char* kDeregister = "deregister";
inline constexpr const char* kQueryService = "service-query";
// Brokerage service.
inline constexpr const char* kAdvertise = "advertise";
inline constexpr const char* kQueryProviders = "provider-query";
inline constexpr const char* kReportPerformance = "performance-report";
inline constexpr const char* kQueryHistory = "history-query";
// Matchmaking.
inline constexpr const char* kFindContainer = "find-container";
// Monitoring.
inline constexpr const char* kQueryStatus = "status-query";
inline constexpr const char* kHeartbeat = "heartbeat";
// Ontology service.
inline constexpr const char* kGetOntology = "get-ontology";
inline constexpr const char* kGetShell = "get-ontology-shell";
inline constexpr const char* kStoreOntology = "store-ontology";
// Authentication.
inline constexpr const char* kAuthenticate = "authenticate";
inline constexpr const char* kVerifyToken = "verify-token";
// Persistent storage.
inline constexpr const char* kStorePut = "storage-put";
inline constexpr const char* kStoreGet = "storage-get";
inline constexpr const char* kStoreList = "storage-list";
// Scheduling.
inline constexpr const char* kScheduleRequest = "schedule-request";
// Application containers.
inline constexpr const char* kExecuteActivity = "execute-activity";
inline constexpr const char* kQueryExecutable = "query-executable";
// Planning (Figures 2 and 3).
inline constexpr const char* kPlanRequest = "planning-request";
inline constexpr const char* kReplanRequest = "replanning-request";
// Coordination.
inline constexpr const char* kEnactCase = "enact-case";
inline constexpr const char* kCaseCompleted = "case-completed";
inline constexpr const char* kCheckpointCase = "checkpoint-case";
inline constexpr const char* kRestoreCase = "restore-case";
// Simulation service.
inline constexpr const char* kSimulateCase = "simulate-case";
inline constexpr const char* kSimulatePlan = "simulate-plan";
}  // namespace protocols

/// True when an unrecognized message deserves a NOT-UNDERSTOOD bounce:
/// only initiating performatives are bounced; stray acknowledgements,
/// informs and failures are dropped to prevent reply loops.
inline bool should_bounce_unknown(const agent::AclMessage& message) {
  return message.performative == agent::Performative::Request ||
         message.performative == agent::Performative::QueryRef ||
         message.performative == agent::Performative::QueryIf;
}

/// Builds the standard rejection reply for a payload the service could not
/// make sense of (missing or malformed params). Carries the machine-readable
/// `reason` plus the legacy `error` key older call sites still read.
inline agent::AclMessage make_not_understood(const agent::AclMessage& message,
                                             const std::string& reason) {
  agent::AclMessage reply = message.make_reply(agent::Performative::NotUnderstood);
  reply.params["reason"] = reason;
  reply.params["error"] = reason;
  return reply;
}

/// Builds the standard Failure reply for a request the service understood
/// but could not carry out.
inline agent::AclMessage make_failure(const agent::AclMessage& message,
                                      const std::string& reason) {
  agent::AclMessage reply = message.make_reply(agent::Performative::Failure);
  reply.params["reason"] = reason;
  reply.params["error"] = reason;
  return reply;
}

/// Sends the standard registration message to the information service.
inline void register_with_information_service(agent::Agent& agent_ref,
                                              agent::AgentPlatform& platform,
                                              const std::string& type) {
  if (!platform.has_agent(names::kInformation)) return;
  agent::AclMessage registration;
  registration.performative = agent::Performative::Request;
  registration.sender = agent_ref.name();
  registration.receiver = names::kInformation;
  registration.protocol = protocols::kRegister;
  registration.params["type"] = type;
  platform.send(std::move(registration));
}

}  // namespace ig::svc
