#include "wfl/enact.hpp"

#include <deque>
#include <map>
#include <set>

#include "wfl/service.hpp"
#include "wfl/validate.hpp"

namespace ig::wfl {

ActivityExecutor make_catalogue_executor(const ServiceCatalogue& catalogue) {
  // The shared counter gives produced items unique names across the run.
  auto counter = std::make_shared<std::size_t>(0);
  return [&catalogue, counter](const Activity& activity,
                               const DataSet& state) -> std::optional<std::vector<DataSpec>> {
    const ServiceType* service = catalogue.find(activity.service_name);
    if (service == nullptr) return std::nullopt;
    if (!service->bind_inputs(state).has_value()) return std::nullopt;
    std::vector<DataSpec> outputs =
        service->produce_outputs(activity.service_name + "#" + std::to_string(++*counter) + ":");
    // Stable names from the activity's declared output set (D8, D9, ...).
    for (std::size_t i = 0; i < outputs.size() && i < activity.output_data.size(); ++i)
      outputs[i].set_name(activity.output_data[i]);
    return outputs;
  };
}

namespace {

/// The machine: a token queue plus Join synchronization state.
class Machine {
 public:
  Machine(const ProcessDescription& process, const CaseDescription& case_description,
          const ActivityExecutor& executor, const EnactmentOptions& options)
      : process_(process),
        case_(case_description),
        executor_(executor),
        options_(options),
        tracer_(options.tracer),
        case_id_(options.trace_case_id.empty() ? process.name() : options.trace_case_id) {}

  EnactmentResult run() {
    if (tracer_ != nullptr)
      case_span_ = tracer_->begin(obs::SpanKind::Case, process_.name(), case_id_, 0, clock_);
    EnactmentResult result = run_machine();
    if (case_span_ != 0) {
      const auto close = [&](std::map<std::string, obs::SpanId>& open) {
        for (const auto& [id, span] : open) {
          tracer_->tag(span, "status", result.success ? "ok" : "aborted");
          tracer_->end(span, clock_);
        }
        open.clear();
      };
      close(join_spans_);
      close(iteration_spans_);
      tracer_->tag(case_span_, "success", result.success ? "true" : "false");
      if (!result.error.empty()) tracer_->tag(case_span_, "error", result.error);
      tracer_->end(case_span_, clock_);
    }
    return result;
  }

 private:
  EnactmentResult run_machine() {
    EnactmentResult result;
    const auto errors = validate(process_);
    if (!errors.empty()) {
      result.error = "invalid process description: " + errors.front().message;
      return result;
    }
    data_ = case_.initial_data();

    // Seed: the Begin activity fires immediately.
    trigger(process_.begin_activity().id, "");
    int steps = 0;
    while (!tokens_.empty()) {
      if (++steps > options_.max_steps) {
        result.error = "step budget exhausted (malformed or runaway graph)";
        result.trace = std::move(trace_);
        return result;
      }
      const Token token = tokens_.front();
      tokens_.pop_front();
      if (!consume(token, result)) {
        result.final_data = data_;
        result.trace = std::move(trace_);
        return result;  // error already recorded
      }
      if (reached_end_) break;
    }
    if (!reached_end_) {
      result.error = "control flow stalled before reaching End (Join never satisfied?)";
      result.trace = std::move(trace_);
      result.final_data = data_;
      return result;
    }
    result.final_data = data_;
    result.goal_satisfaction = case_.goal_satisfaction(data_);
    result.success = result.goal_satisfaction >= 1.0;
    if (!result.success) result.error = "plan completed without satisfying the case goals";
    result.activities_executed = executed_;
    result.trace = std::move(trace_);
    return result;
  }

  struct Token {
    std::string activity_id;
    std::string from;
  };

  void trigger(const std::string& activity_id, const std::string& from) {
    tokens_.push_back({activity_id, from});
  }

  void record(const Activity& activity, bool executed, bool failed) {
    trace_.push_back({activity.id, activity.name, executed, failed});
  }

  /// Processes one token; returns false on fatal failure. Every consumed
  /// token advances the step clock the spans are stamped with.
  bool consume(const Token& token, EnactmentResult& result) {
    const Activity* activity = process_.find_activity(token.activity_id);
    if (activity == nullptr) {
      result.error = "dangling transition to '" + token.activity_id + "'";
      return false;
    }
    clock_ += 1.0;
    visited_.insert(activity->id);
    switch (activity->kind) {
      case ActivityKind::Begin:
      case ActivityKind::Merge:
        step_span(*activity);
        record(*activity, false, false);
        return propagate(*activity);
      case ActivityKind::End:
        step_span(*activity);
        record(*activity, false, false);
        reached_end_ = true;
        return true;
      case ActivityKind::Fork: {
        if (tracer_ != nullptr) {
          const obs::SpanId fork = tracer_->instant(obs::SpanKind::Barrier, activity->name,
                                                    case_id_, case_span_, clock_);
          tracer_->tag(fork, "type", "fork");
          tracer_->tag(fork, "fanout",
                       std::to_string(process_.outgoing(activity->id).size()));
        }
        record(*activity, false, false);
        return propagate(*activity);
      }
      case ActivityKind::Join: {
        auto& arrivals = join_arrivals_[activity->id];
        if (tracer_ != nullptr && arrivals.empty() &&
            join_spans_.count(activity->id) == 0) {
          const obs::SpanId wait = tracer_->begin(obs::SpanKind::Barrier, activity->name,
                                                  case_id_, case_span_, clock_);
          tracer_->tag(wait, "type", "join");
          join_spans_[activity->id] = wait;
        }
        arrivals.insert(token.from);
        if (arrivals.size() < process_.predecessors(activity->id).size()) return true;
        if (tracer_ != nullptr) {
          auto wait = join_spans_.find(activity->id);
          if (wait != join_spans_.end()) {
            tracer_->tag(wait->second, "arrivals", std::to_string(arrivals.size()));
            tracer_->end(wait->second, clock_);
            join_spans_.erase(wait);
          }
        }
        arrivals.clear();
        record(*activity, false, false);
        return propagate(*activity);
      }
      case ActivityKind::Choice:
        record(*activity, false, false);
        return choose(*activity, result);
      case ActivityKind::EndUser: {
        obs::SpanId span = 0;
        if (tracer_ != nullptr) {
          span = tracer_->begin(obs::SpanKind::Activity, activity->name, case_id_,
                                case_span_, clock_);
          tracer_->tag(span, "service", activity->service_name);
        }
        auto produced = executor_(*activity, data_);
        clock_ += 1.0;  // an execution costs one step
        if (!produced.has_value()) {
          if (span != 0) {
            tracer_->tag(span, "status", "failed");
            tracer_->end(span, clock_);
          }
          record(*activity, true, true);
          result.error = "activity '" + activity->name + "' failed";
          return false;
        }
        if (span != 0) {
          tracer_->tag(span, "status", "ok");
          tracer_->end(span, clock_);
        }
        ++executed_;
        record(*activity, true, false);
        for (auto& item : *produced) data_.put(std::move(item));
        return propagate(*activity);
      }
    }
    result.error = "unknown activity kind";
    return false;
  }

  /// Instant Step span for a flow-control node visit.
  void step_span(const Activity& activity) {
    if (tracer_ == nullptr) return;
    tracer_->instant(obs::SpanKind::Step, activity.name, case_id_, case_span_, clock_);
  }

  /// Follows every outgoing transition (Fork fans out; others have one).
  bool propagate(const Activity& activity) {
    for (const auto* transition : process_.outgoing(activity.id))
      trigger(transition->destination, activity.id);
    return true;
  }

  /// Choice semantics: first satisfied guard wins, with the loop guardrail
  /// preferring a forward transition once the iteration budget is spent.
  bool choose(const Activity& activity, EnactmentResult& result) {
    const int visits = ++choice_visits_[activity.id];
    const Transition* chosen = nullptr;
    const Transition* fallback = nullptr;
    for (const auto* transition : process_.outgoing(activity.id)) {
      const bool back_edge = visited_.count(transition->destination) > 0;
      if (!evaluate_against_state(transition->guard, data_)) continue;
      if (back_edge && visits >= options_.max_loop_iterations) {
        fallback = transition;
        continue;
      }
      chosen = transition;
      break;
    }
    if (chosen == nullptr) {
      for (const auto* transition : process_.outgoing(activity.id)) {
        if (visited_.count(transition->destination) == 0) {
          chosen = transition;
          break;
        }
      }
      if (chosen == nullptr) chosen = fallback;
    }
    if (chosen == nullptr) {
      result.error = "Choice '" + activity.name + "' has no viable transition";
      return false;
    }
    if (tracer_ != nullptr) {
      const obs::SpanId decision = tracer_->instant(obs::SpanKind::Choice, activity.name,
                                                    case_id_, case_span_, clock_);
      tracer_->tag(decision, "chosen", chosen->destination);
      tracer_->tag(decision, "visit", std::to_string(visits));
      // A back edge opens the next loop pass; any edge closes the open one.
      auto open = iteration_spans_.find(activity.id);
      if (open != iteration_spans_.end()) {
        tracer_->end(open->second, clock_);
        iteration_spans_.erase(open);
      }
      if (visited_.count(chosen->destination) > 0) {
        const obs::SpanId pass = tracer_->begin(obs::SpanKind::Iteration, activity.name,
                                                case_id_, case_span_, clock_);
        tracer_->tag(pass, "pass", std::to_string(visits));
        iteration_spans_[activity.id] = pass;
      }
    }
    trigger(chosen->destination, activity.id);
    return true;
  }

  const ProcessDescription& process_;
  const CaseDescription& case_;
  const ActivityExecutor& executor_;
  const EnactmentOptions& options_;
  obs::SpanTracer* tracer_;  ///< nullptr = tracing off
  std::string case_id_;

  DataSet data_;
  std::deque<Token> tokens_;
  std::map<std::string, std::set<std::string>> join_arrivals_;
  std::map<std::string, int> choice_visits_;
  std::set<std::string> visited_;  ///< activities seen at least once
  std::vector<EnactmentStep> trace_;
  bool reached_end_ = false;
  int executed_ = 0;
  double clock_ = 0.0;  ///< machine steps; span timestamps
  obs::SpanId case_span_ = 0;
  std::map<std::string, obs::SpanId> join_spans_;
  std::map<std::string, obs::SpanId> iteration_spans_;
};

}  // namespace

EnactmentResult enact(const ProcessDescription& process,
                      const CaseDescription& case_description,
                      const ActivityExecutor& executor, const EnactmentOptions& options) {
  return Machine(process, case_description, executor, options).run();
}

}  // namespace ig::wfl
