#include "wfl/data.hpp"

#include <algorithm>

namespace ig::wfl {

namespace {
const meta::Value kNone{};
}

void DataSpec::set(std::string_view property, meta::Value value) {
  properties_.insert_or_assign(std::string(property), std::move(value));
}

const meta::Value& DataSpec::get(std::string_view property) const noexcept {
  auto it = properties_.find(property);
  return it != properties_.end() ? it->second : kNone;
}

bool DataSpec::has(std::string_view property) const noexcept {
  auto it = properties_.find(property);
  return it != properties_.end() && !it->second.is_none();
}

std::string DataSpec::classification() const {
  const meta::Value& value = get(props::kClassification);
  return value.type() == meta::ValueType::String ? value.as_string() : std::string();
}

DataSpec& DataSpec::with_classification(std::string_view value) {
  set(props::kClassification, meta::Value(std::string(value)));
  return *this;
}

DataSpec& DataSpec::with(std::string_view property, meta::Value value) {
  set(property, std::move(value));
  return *this;
}

std::string DataSpec::to_display_string() const {
  std::string out = name_;
  out += '{';
  bool first = true;
  for (const auto& [property, value] : properties_) {
    if (!first) out += ", ";
    first = false;
    out += property;
    out += '=';
    out += value.to_display_string();
  }
  out += '}';
  return out;
}

DataSet::DataSet(std::vector<DataSpec> items) {
  for (auto& item : items) put(std::move(item));
}

void DataSet::put(DataSpec item) {
  for (auto& existing : items_) {
    if (existing.name() == item.name()) {
      existing = std::move(item);
      return;
    }
  }
  items_.push_back(std::move(item));
}

const DataSpec* DataSet::find(std::string_view name) const noexcept {
  for (const auto& item : items_) {
    if (item.name() == name) return &item;
  }
  return nullptr;
}

bool DataSet::remove(std::string_view name) {
  auto it = std::find_if(items_.begin(), items_.end(),
                         [&](const DataSpec& d) { return d.name() == name; });
  if (it == items_.end()) return false;
  items_.erase(it);
  return true;
}

std::vector<std::string> DataSet::names() const {
  std::vector<std::string> out;
  out.reserve(items_.size());
  for (const auto& item : items_) out.push_back(item.name());
  return out;
}

std::vector<const DataSpec*> DataSet::with_classification(std::string_view classification) const {
  std::vector<const DataSpec*> out;
  for (const auto& item : items_) {
    if (item.classification() == classification) out.push_back(&item);
  }
  return out;
}

}  // namespace ig::wfl
