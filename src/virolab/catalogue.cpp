#include "virolab/catalogue.hpp"

#include "util/strings.hpp"

namespace ig::virolab {

using wfl::Condition;

wfl::ServiceCatalogue make_catalogue() {
  wfl::ServiceCatalogue catalogue;

  // POD — "ab initio" parallel orientation determination.
  {
    wfl::ServiceType service("POD");
    service.set_description("ab initio orientation determination of 2D virus projections");
    service.set_inputs({"A", "B"});
    service.set_input_condition(Condition::parse(
        "A.Classification = \"POD-Parameter\" and B.Classification = \"2D Image\""));  // C1
    service.set_outputs({"C"});
    service.set_output_condition(
        Condition::parse("C.Classification = \"Orientation File\""));  // C2 (normalized)
    service.set_cost(4.0);
    service.set_base_work(40.0);
    catalogue.add(std::move(service));
  }

  // P3DR — parallel 3-D reconstruction.
  {
    wfl::ServiceType service("P3DR");
    service.set_description("parallel 3D reconstruction of the electron density map");
    service.set_inputs({"A", "B", "C"});
    service.set_input_condition(Condition::parse(
        "A.Classification = \"P3DR-Parameter\" and B.Classification = \"2D Image\" and "
        "C.Classification = \"Orientation File\""));  // C3
    service.set_outputs({"D"});
    service.set_output_condition(Condition::parse("D.Classification = \"3D Model\""));  // C4
    service.set_cost(10.0);
    service.set_base_work(120.0);
    catalogue.add(std::move(service));
  }

  // POR — parallel orientation refinement.
  {
    wfl::ServiceType service("POR");
    service.set_description("parallel orientation refinement against the current 3D model");
    service.set_inputs({"A", "B", "C", "D"});
    service.set_input_condition(Condition::parse(
        "A.Classification = \"POR-Parameter\" and B.Classification = \"2D Image\" and "
        "C.Classification = \"Orientation File\" and D.Classification = \"3D Model\""));  // C5
    service.set_outputs({"E"});
    service.set_output_condition(
        Condition::parse("E.Classification = \"Orientation File\""));  // C6
    service.set_cost(8.0);
    service.set_base_work(90.0);
    catalogue.add(std::move(service));
  }

  // PSF — parallel structure-factor correlation (resolution determination).
  {
    wfl::ServiceType service("PSF");
    service.set_description("correlates two 3D models to determine the achieved resolution");
    service.set_inputs({"A", "B", "C"});
    service.set_input_condition(Condition::parse(
        "A.Classification = \"PSF-Parameter\" and B.Classification = \"3D Model\" and "
        "C.Classification = \"3D Model\""));  // C7
    service.set_outputs({"D"});
    service.set_output_condition(
        Condition::parse("D.Classification = \"Resolution File\""));  // C8
    service.set_cost(3.0);
    service.set_base_work(25.0);
    catalogue.add(std::move(service));
  }

  return catalogue;
}

wfl::DataSet make_initial_data() {
  wfl::DataSet data;
  auto parameter = [](const char* name, const char* classification) {
    wfl::DataSpec item(name);
    item.with_classification(classification)
        .with(wfl::props::kFormat, meta::Value("Text"))
        .with(wfl::props::kSize, meta::Value(0.003))  // 3 KB, in MB
        .with(wfl::props::kCreator, meta::Value("User"));
    return item;
  };
  data.put(parameter("D1", cls::kPodParameter));
  data.put(parameter("D2", cls::kP3drParameter));
  data.put(parameter("D3", cls::kP3drParameter));
  data.put(parameter("D4", cls::kP3drParameter));
  data.put(parameter("D5", cls::kPorParameter));
  data.put(parameter("D6", cls::kPsfParameter));

  wfl::DataSpec images("D7");
  images.with_classification(cls::k2dImage)
      .with(wfl::props::kSize, meta::Value(1536.0))  // "1.5G" in MB
      .with(wfl::props::kCreator, meta::Value("User"))
      .with(wfl::props::kFormat, meta::Value("Image Stack"));
  data.put(std::move(images));
  return data;
}

wfl::CaseDescription make_case_description(double target_resolution) {
  wfl::CaseDescription case_description("CD-3DSD");
  case_description.set_id("CD-3DSD");
  case_description.set_process_name("PD-3DSD");
  case_description.initial_data() = make_initial_data();

  wfl::GoalSpec goal;
  goal.description = "a resolution file for the reconstructed density map exists";
  goal.condition = Condition::parse("R.Classification = \"Resolution File\"");
  case_description.add_goal(std::move(goal));
  case_description.add_expected_result("D12");

  // Cons1: "if (Classification = 'Resolution File' and Value > 8) then Merge
  // else End" — continue refining while the resolution is still coarser than
  // the target.
  case_description.add_constraint(
      "Cons1", Condition::parse("R.Classification = \"Resolution File\" and R.Value > " +
                                util::format_number(target_resolution)));
  return case_description;
}

}  // namespace ig::virolab
