// The standard grid ontology of Figure 12.
//
// Ten frame classes describe the metainformation manipulated by the agents:
// Task, ProcessDescription, Transition, CaseDescription, Activity, Data,
// Service, Resource, Hardware and Software. Slot names follow the figure
// verbatim (including spaces) so that serialized documents read like the
// paper's tables.
#pragma once

#include "meta/ontology.hpp"

namespace ig::meta {

/// Builds the Figure 12 ontology shell (classes + slots, no instances).
Ontology standard_grid_ontology();

/// Class-name constants for the standard ontology.
namespace classes {
inline constexpr const char* kTask = "Task";
inline constexpr const char* kProcessDescription = "Process Description";
inline constexpr const char* kTransition = "Transition";
inline constexpr const char* kCaseDescription = "Case Description";
inline constexpr const char* kActivity = "Activity";
inline constexpr const char* kData = "Data";
inline constexpr const char* kService = "Service";
inline constexpr const char* kResource = "Resource";
inline constexpr const char* kHardware = "Hardware";
inline constexpr const char* kSoftware = "Software";
}  // namespace classes

}  // namespace ig::meta
