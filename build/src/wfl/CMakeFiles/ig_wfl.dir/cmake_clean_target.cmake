file(REMOVE_RECURSE
  "libig_wfl.a"
)
