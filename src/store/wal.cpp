#include "store/wal.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/log.hpp"

namespace ig::store {
namespace {

constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentSuffix = ".seg";

void make_dirs(FileOps& fops, const std::string& dir) {
  std::string partial;
  for (std::size_t i = 0; i <= dir.size(); ++i) {
    if (i < dir.size() && dir[i] != '/') continue;
    partial = dir.substr(0, i == dir.size() ? i : i + 1);
    if (partial.empty() || partial == "/") continue;
    if (fops.mkdir(partial, 0755) != 0 && errno != EEXIST)
      throw Error(errno_to_kind(errno), "mkdir", partial, std::strerror(errno));
  }
}

std::string segment_path(const std::string& dir, std::uint64_t sequence) {
  char name[32];
  std::snprintf(name, sizeof name, "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(sequence), kSegmentSuffix);
  return dir + "/" + name;
}

}  // namespace

WriteAheadLog::WriteAheadLog(WalOptions options)
    : options_(std::move(options)),
      fops_(options_.file_ops != nullptr ? options_.file_ops : &posix_file_ops()) {
  make_dirs(*fops_, options_.dir);

  // Collect and sort existing segments by their header sequence number.
  std::vector<std::string> names;
  if (DIR* dir = ::opendir(options_.dir.c_str())) {
    while (const dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name.rfind(kSegmentPrefix, 0) == 0 &&
          name.size() > std::string(kSegmentSuffix).size() &&
          name.compare(name.size() - 4, 4, kSegmentSuffix) == 0)
        names.push_back(options_.dir + "/" + name);
    }
    ::closedir(dir);
  }
  std::vector<std::unique_ptr<Segment>> found;
  for (const std::string& path : names) {
    if (auto segment = Segment::open(*fops_, path)) found.push_back(std::move(segment));
    else {
      // Unreadable header: nothing in the file is trustworthy. Remove it so
      // it cannot shadow a future segment with the same name.
      IG_LOG_WARN("store") << "dropping unreadable segment " << path;
      fops_->unlink(path);
      ++segments_removed_;
    }
  }
  std::sort(found.begin(), found.end(), [](const auto& a, const auto& b) {
    return a->sequence() < b->sequence();
  });

  // Keep the longest intact prefix: a torn tail or an LSN discontinuity
  // invalidates everything after it (those records were appended after the
  // lost ones and may depend on them).
  for (auto& segment : found) {
    const bool continuous =
        segments_.empty() ? true : segment->first_lsn() == last_lsn_ + 1;
    if (!continuous || (!segments_.empty() && segments_.back()->torn_tail_repaired())) {
      IG_LOG_WARN("store") << "dropping segment " << segment->path()
                           << " past the recovered prefix";
      const std::string path = segment->path();
      segment.reset();  // unmap before unlink
      fops_->unlink(path);
      ++segments_removed_;
      continue;
    }
    last_lsn_ = segment->last_lsn();
    recovered_records_ += segment->records().size();
    torn_tail_repaired_ = torn_tail_repaired_ || segment->torn_tail_repaired();
    next_sequence_ = segment->sequence() + 1;
    segments_.push_back(std::move(segment));
  }

  if (segments_.empty()) {
    auto segment = Segment::create(*fops_, segment_path(options_.dir, next_sequence_),
                                   options_.segment_size, next_sequence_, 1);
    if (!segment)
      throw Error(errno_to_kind(errno), "create-segment", options_.dir, std::strerror(errno));
    ++next_sequence_;
    ++segments_created_;
    segments_.push_back(std::move(segment));
    if (options_.sync != SyncMode::kNone) sync_dir();
  }
  durable_lsn_ = last_lsn_;  // everything recovered is already on disk
}

WriteAheadLog::~WriteAheadLog() {
  // Best-effort flush so a clean shutdown persists even under kNone. A
  // poisoned log stays hands-off: its last barrier already failed and a
  // lucky flush now would make the on-disk state lie about what was acked.
  std::lock_guard<std::mutex> lock(mutex_);
  if (!segments_.empty() && !poisoned_.load(std::memory_order_acquire))
    segments_.back()->sync();
}

void WriteAheadLog::poison_locked(std::string reason) {
  if (poisoned_.load(std::memory_order_relaxed)) return;
  poison_reason_ = std::move(reason);
  poisoned_.store(true, std::memory_order_release);
  IG_LOG_WARN("store") << "WAL poisoned (fail-stop): " << poison_reason_;
}

void WriteAheadLog::replay(Lsn after,
                           const std::function<void(Lsn, std::string_view)>& fn) const {
  for (const auto& segment : segments_) {
    Lsn lsn = segment->first_lsn();
    for (const std::string_view record : segment->records()) {
      if (lsn > after) fn(lsn, record);
      ++lsn;
    }
  }
}

Lsn WriteAheadLog::append(std::string_view payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (poisoned_.load(std::memory_order_acquire))
    throw Error(ErrorKind::kPoisoned, "append", options_.dir, poison_reason_);
  if (!active_locked().fits(payload.size())) roll_locked(payload.size());
  active_locked().append(payload);
  ++appends_;
  const Lsn lsn = ++last_lsn_;
  if (options_.sync == SyncMode::kAlways) {
    if (!active_locked().sync()) {
      const int err = errno;
      ++fsync_failures_;
      poison_locked(std::string("append fsync failed: ") + std::strerror(err));
      throw Error(ErrorKind::kPoisoned, "append", options_.dir, poison_reason_);
    }
    ++fsyncs_;
    std::lock_guard<std::mutex> commit_lock(commit_mutex_);
    if (durable_lsn_ < lsn) durable_lsn_ = lsn;
  }
  return lsn;
}

void WriteAheadLog::commit(Lsn upto) {
  if (options_.sync == SyncMode::kNone) return;
  std::unique_lock<std::mutex> lock(commit_mutex_);
  while (durable_lsn_ < upto && sync_in_flight_) commit_cv_.wait(lock);
  if (durable_lsn_ >= upto) {
    // Another thread's barrier already covered our records: group commit.
    ++group_commits_;
    return;
  }
  // Fail-stop: once a barrier failed, no later barrier may ack anything.
  // Checked *after* the durable fast path — records a successful barrier
  // already covered stay honestly acked.
  if (poisoned_.load(std::memory_order_acquire))
    throw Error(ErrorKind::kPoisoned, "commit", options_.dir, poison_reason_);
  sync_in_flight_ = true;
  if (options_.group_window_us > 0) {
    // Leader linger: hold the leadership but release the lock for a short
    // window so commits arriving meanwhile register as followers. The
    // msync target is read *after* the window, so every one of them is
    // covered by this single barrier.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.group_window_us);
    commit_cv_.wait_until(lock, deadline, [] { return false; });
  }
  lock.unlock();
  Lsn target = 0;
  bool ok = true;
  int err = 0;
  {
    // The msync runs under the append mutex so the segment cannot roll or
    // be compacted away mid-sync; sealed segments were synced at roll time,
    // so syncing the active one covers everything up to last_lsn_.
    std::lock_guard<std::mutex> append_lock(mutex_);
    target = last_lsn_;
    ok = active_locked().sync();
    if (ok) {
      ++fsyncs_;
    } else {
      err = errno;
      ++fsync_failures_;
      poison_locked(std::string("commit fsync failed: ") + std::strerror(err));
    }
  }
  lock.lock();
  sync_in_flight_ = false;
  // durable_lsn_ only ever advances over a barrier that *succeeded*; a
  // failed one wakes every waiter into the poisoned check below.
  if (ok && durable_lsn_ < target) durable_lsn_ = target;
  commit_cv_.notify_all();
  if (!ok) throw Error(ErrorKind::kPoisoned, "commit", options_.dir, poison_reason_);
}

Lsn WriteAheadLog::last_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_lsn_;
}

Lsn WriteAheadLog::durable_lsn() const {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  return durable_lsn_;
}

void WriteAheadLog::skip_to(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (last_lsn_ >= lsn) return;
  for (auto& segment : segments_) {
    const std::string path = segment->path();
    segment.reset();  // unmap before unlink
    fops_->unlink(path);
    ++segments_removed_;
  }
  segments_.clear();
  last_lsn_ = lsn;
  auto segment = Segment::create(*fops_, segment_path(options_.dir, next_sequence_),
                                 options_.segment_size, next_sequence_, lsn + 1);
  if (!segment)
    throw Error(errno_to_kind(errno), "create-segment", options_.dir, std::strerror(errno));
  ++next_sequence_;
  ++segments_created_;
  segments_.push_back(std::move(segment));
  if (options_.sync != SyncMode::kNone) sync_dir();
}

std::size_t WriteAheadLog::remove_segments_below(Lsn lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t removed = 0;
  while (segments_.size() > 1 && segments_.front()->last_lsn() <= lsn) {
    const std::string path = segments_.front()->path();
    segments_.erase(segments_.begin());  // unmap before unlink
    fops_->unlink(path);
    ++removed;
  }
  segments_removed_ += removed;
  if (removed > 0 && options_.sync != SyncMode::kNone) sync_dir();
  return removed;
}

std::size_t WriteAheadLog::segment_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.size();
}

WalStats WriteAheadLog::stats() const {
  WalStats stats;
  {
    std::lock_guard<std::mutex> lock(commit_mutex_);
    stats.group_commits = group_commits_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats.appends = appends_;
  stats.fsyncs = fsyncs_;
  stats.fsync_failures = fsync_failures_;
  stats.segments_created = segments_created_;
  stats.segments_removed = segments_removed_;
  stats.recovered_records = recovered_records_;
  stats.torn_tail_repaired = torn_tail_repaired_;
  stats.poisoned = poisoned_.load(std::memory_order_acquire);
  for (const auto& segment : segments_) {
    const std::size_t records = segment->records().size();
    stats.records += records;
    stats.bytes += segment->tail() - Segment::kHeaderSize -
                   Segment::kFrameOverhead * records;
  }
  return stats;
}

std::string WriteAheadLog::active_segment_path() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.back()->path();
}

std::size_t WriteAheadLog::active_tail() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.back()->tail();
}

void WriteAheadLog::roll_locked(std::size_t payload_size) {
  const std::size_t needed =
      Segment::kHeaderSize + Segment::kFrameOverhead + payload_size;
  if (options_.sync != SyncMode::kNone) {
    // Seal-time sync: commit() only ever syncs the active segment, so a
    // sealed segment must already be durable when it stops being active.
    if (!active_locked().sync()) {
      const int err = errno;
      ++fsync_failures_;
      poison_locked(std::string("seal fsync failed: ") + std::strerror(err));
      throw Error(ErrorKind::kPoisoned, "append", options_.dir, poison_reason_);
    }
    ++fsyncs_;
  }
  // A failed create is *not* fail-stop: the active segment is sealed and
  // intact, last_lsn_ is unchanged, and nothing was appended — the caller
  // sees a clean kNoSpace/kIo and may retry once space frees up.
  auto segment = Segment::create(*fops_, segment_path(options_.dir, next_sequence_),
                                 std::max(options_.segment_size, needed), next_sequence_,
                                 last_lsn_ + 1);
  if (!segment)
    throw Error(errno_to_kind(errno), "create-segment", options_.dir, std::strerror(errno));
  ++next_sequence_;
  ++segments_created_;
  segments_.push_back(std::move(segment));
  if (options_.sync != SyncMode::kNone) sync_dir();
}

void WriteAheadLog::sync_dir() {
  const int fd = fops_->open(options_.dir, O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) return;
  fops_->fsync(fd);
  fops_->close(fd);
}

}  // namespace ig::store
