// Monitoring service: accurate, current resource state.
//
// "Accurate information about the status of a resource may be obtained using
// monitoring services" — unlike brokerage data, which may be obsolete, the
// monitor reads the grid directly. It also samples utilization periodically
// for the soft-deadline history discussed in Section 1.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "grid/grid.hpp"

namespace ig::svc {

class MonitoringService : public agent::Agent {
 public:
  MonitoringService(std::string name, const grid::Grid& grid, grid::SimTime sample_period = 0.0)
      : Agent(std::move(name)), grid_(&grid), sample_period_(sample_period) {}

  void on_start() override;
  void handle_message(const agent::AclMessage& message) override;

  /// Utilization samples per node id (busy fraction at each sample time).
  const std::map<std::string, std::vector<double>>& samples() const noexcept { return samples_; }

 private:
  void sample();

  const grid::Grid* grid_;
  grid::SimTime sample_period_;  ///< 0 disables periodic sampling
  std::size_t max_samples_ = 1024;
  std::map<std::string, std::vector<double>> samples_;
};

}  // namespace ig::svc
