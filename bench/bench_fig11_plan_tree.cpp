// Figure 11 — The corresponding plan tree to the process description for
// the 3D reconstruction of virus structures.
//
// Prints the tree (Sequential(POD, P3DR1, Iterative(POR, Concurrent(P3DR2,
// P3DR3, P3DR4), PSF))), verifies it is exactly what lifting Figure 10's
// graph produces, and evaluates its fitness under the paper's weights.
#include <cstdio>

#include "planner/convert.hpp"
#include "planner/evaluate.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"

using namespace ig;

int main() {
  const planner::PlanNode tree = virolab::make_fig11_plan_tree();

  std::printf("Figure 11: the plan tree for the 3D reconstruction\n\n");
  std::printf("%s\n", tree.to_tree_string().c_str());
  std::printf("size: %zu nodes (%zu end-user activities, %zu controller nodes)\n\n",
              tree.size(), tree.terminal_count(), tree.size() - tree.terminal_count());

  // The tree is the lift of Figure 10's graph.
  const planner::PlanNode lifted = planner::from_process(virolab::make_fig10_process());
  const bool matches_fig10 = lifted == tree;
  std::printf("lift(Figure 10 graph) == Figure 11 tree: %s\n", matches_fig10 ? "yes" : "NO");

  // And lowering it recovers the graph's inventory.
  const wfl::ProcessDescription relowered = planner::to_process(tree, "PD-3DSD");
  const bool relowers = relowered.end_user_activity_count() == 7 &&
                        relowered.flow_control_activity_count() == 6 &&
                        relowered.transition_count() == 15;
  std::printf("lower(tree) restores 7+6 activities / 15 transitions: %s\n\n",
              relowers ? "yes" : "NO");

  // Fitness under Table 1 weights: fv = fg = 1, size 10 => f = 0.925.
  const planner::PlanningProblem problem = planner::PlanningProblem::from_case(
      virolab::make_case_description(), virolab::make_catalogue());
  planner::PlanEvaluator evaluator(problem);
  const planner::Fitness fitness = evaluator.evaluate(tree);
  std::printf("fitness of the paper's own plan: f=%.4f fv=%.2f fg=%.2f fr=%.4f\n",
              fitness.overall, fitness.validity, fitness.goal, fitness.representation);
  const bool fit_ok = fitness.validity == 1.0 && fitness.goal == 1.0;
  std::printf("valid and goal-reaching: %s\n", fit_ok ? "yes" : "NO");

  const bool ok = matches_fig10 && relowers && fit_ok;
  std::printf("figure 11 reproduced: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
