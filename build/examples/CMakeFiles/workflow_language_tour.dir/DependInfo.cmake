
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/workflow_language_tour.cpp" "examples/CMakeFiles/workflow_language_tour.dir/workflow_language_tour.cpp.o" "gcc" "examples/CMakeFiles/workflow_language_tour.dir/workflow_language_tour.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/ig_services.dir/DependInfo.cmake"
  "/root/repo/build/src/virolab/CMakeFiles/ig_virolab.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/ig_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/ig_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/ig_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/wfl/CMakeFiles/ig_wfl.dir/DependInfo.cmake"
  "/root/repo/build/src/meta/CMakeFiles/ig_meta.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/ig_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ig_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
