// Observability layer: metrics registry, span tracer, exporters, and the
// span structure both enactment machines emit.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "agent/chaos.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/enact.hpp"
#include "wfl/structure.hpp"
#include "wfl/xml_io.hpp"

namespace ig {
namespace {

// -- metrics registry ----------------------------------------------------------

TEST(Metrics, CountersAndGaugesRoundTripThroughSnapshot) {
  obs::MetricsRegistry registry;
  registry.counter("events_total").inc();
  registry.counter("events_total").inc(4);
  registry.gauge("depth").set(3.5);
  registry.gauge("depth", {{"queue", "a"}}).set(1.0);

  const obs::RegistrySnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.points.size(), 3u);
  const obs::MetricPoint* events = snapshot.find("events_total");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->kind, obs::MetricKind::Counter);
  EXPECT_DOUBLE_EQ(events->value, 5.0);
  const obs::MetricPoint* labelled = snapshot.find("depth", {{"queue", "a"}});
  ASSERT_NE(labelled, nullptr);
  EXPECT_DOUBLE_EQ(labelled->value, 1.0);
  EXPECT_EQ(snapshot.find("missing"), nullptr);
}

TEST(Metrics, SameNameDifferentKindThrows) {
  obs::MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x", obs::default_latency_buckets()),
               std::logic_error);
  // Same name under different labels is a distinct instrument, same kind only.
  registry.counter("x", {{"shard", "0"}}).inc();
  EXPECT_THROW(registry.gauge("x", {{"shard", "0"}}), std::logic_error);
}

TEST(Metrics, InstrumentReferencesAreStableAcrossRegistrations) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("stable_total");
  first.inc();
  for (int i = 0; i < 100; ++i)
    registry.counter("filler_" + std::to_string(i)).inc();
  obs::Counter& again = registry.counter("stable_total");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(first.value(), 1u);
}

TEST(Metrics, HistogramQuantilesMatchSampleSetBitwise) {
  // The acceptance bar for the SampleSet -> registry migration: as long as
  // the sample ring has not wrapped, the histogram's quantiles are the same
  // doubles SampleSet::percentile produced — not approximately, bitwise.
  util::SampleSet reference;
  obs::Histogram histogram(obs::default_latency_buckets(), 4096);
  util::Rng rng(2004);
  for (int i = 0; i < 1000; ++i) {
    const double sample = rng.next_double(0.0, 45.0);
    reference.add(sample);
    histogram.observe(sample);
  }
  const obs::HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 1000u);
  for (const double q : {0.0, 12.5, 50.0, 90.0, 99.0, 100.0}) {
    const double expected = reference.percentile(q);
    const double actual = snapshot.quantile(q);
    EXPECT_EQ(expected, actual) << "q=" << q;  // bitwise, not EXPECT_DOUBLE_EQ
  }
  const std::vector<double> multi = snapshot.quantiles({50.0, 99.0});
  EXPECT_EQ(multi[0], reference.percentile(50.0));
  EXPECT_EQ(multi[1], reference.percentile(99.0));
}

TEST(Metrics, HistogramBucketsAreCumulativeConsistent) {
  obs::Histogram histogram({1.0, 2.0, 4.0}, 16);
  for (const double v : {0.5, 1.5, 1.5, 3.0, 100.0}) histogram.observe(v);
  const obs::HistogramSnapshot snapshot = histogram.snapshot();
  ASSERT_EQ(snapshot.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snapshot.buckets[0], 1u);
  EXPECT_EQ(snapshot.buckets[1], 2u);
  EXPECT_EQ(snapshot.buckets[2], 1u);
  EXPECT_EQ(snapshot.buckets[3], 1u);
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 106.5);
}

TEST(Metrics, EmptyHistogramQuantileIsNaN) {
  obs::Histogram histogram(obs::default_latency_buckets());
  const obs::HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_TRUE(std::isnan(snapshot.quantile(50.0)));
  EXPECT_TRUE(std::isnan(snapshot.mean()));
}

TEST(Metrics, ConcurrentObserversProduceConsistentTotals) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("hits_total");
  obs::Histogram& histogram =
      registry.histogram("lat_seconds", obs::default_latency_buckets(), {}, 1 << 16);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.inc();
        histogram.observe(0.001 * static_cast<double>(t + 1));
        if (i % 512 == 0) (void)registry.snapshot();  // readers race writers
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  const obs::HistogramSnapshot snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(snapshot.samples.size(), static_cast<std::size_t>(kThreads * kPerThread));
}

// -- span tracer ---------------------------------------------------------------

TEST(Spans, DisabledTracerHandsOutZeroAndRecordsNothing) {
  obs::SpanTracer tracer;
  EXPECT_EQ(tracer.begin(obs::SpanKind::Case, "c", "case-1", 0, 0.0), 0u);
  tracer.tag(0, "k", "v");
  tracer.end(0, 1.0);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Spans, LifecycleTagsAndParentLinks) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  const obs::SpanId root = tracer.begin(obs::SpanKind::Case, "proc", "case-1", 0, 1.0);
  const obs::SpanId child =
      tracer.begin(obs::SpanKind::Activity, "POD", "case-1", root, 2.0);
  tracer.tag(child, "status", "ok");
  tracer.end(child, 3.0);
  tracer.end(root, 4.0);
  tracer.end(root, 9.0);  // idempotent: the first close wins

  const std::vector<obs::Span> spans = tracer.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, obs::SpanKind::Case);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_DOUBLE_EQ(spans[0].end, 4.0);
  EXPECT_EQ(spans[1].parent, root);
  ASSERT_NE(spans[1].tag("status"), nullptr);
  EXPECT_EQ(*spans[1].tag("status"), "ok");
  EXPECT_EQ(spans[1].tag("missing"), nullptr);
  EXPECT_TRUE(spans[0].closed && spans[1].closed);
}

TEST(Spans, LimitDropsOldestClosedButKeepsOpenSpans) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.set_limit(4);
  const obs::SpanId open = tracer.begin(obs::SpanKind::Case, "c", "case-1", 0, 0.0);
  for (int i = 0; i < 10; ++i)
    tracer.instant(obs::SpanKind::Step, "s" + std::to_string(i), "case-1", open,
                   static_cast<double>(i));
  EXPECT_LE(tracer.size(), 4u);
  EXPECT_GT(tracer.dropped(), 0u);
  // The open root survived the trim, so its close still lands.
  tracer.end(open, 99.0);
  bool root_closed = false;
  for (const obs::Span& span : tracer.spans())
    if (span.id == open) root_closed = span.closed;
  EXPECT_TRUE(root_closed);
}

TEST(Spans, CaseSpansFiltersByCase) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.instant(obs::SpanKind::Step, "a", "case-1", 0, 0.0);
  tracer.instant(obs::SpanKind::Step, "b", "case-2", 0, 0.0);
  tracer.instant(obs::SpanKind::Step, "c", "case-1", 0, 0.0);
  EXPECT_EQ(tracer.case_spans("case-1").size(), 2u);
  EXPECT_EQ(tracer.case_spans("case-2").size(), 1u);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

// -- exporters and validators --------------------------------------------------

TEST(Exporters, PrometheusExpositionValidatesAndSkipsNaNGauges) {
  obs::MetricsRegistry registry;
  registry.counter("jobs_total", {{"state", "done"}}).inc(7);
  registry.gauge("temperature").set(std::nan(""));
  registry.histogram("lat_seconds", {0.1, 1.0}).observe(0.5);

  const std::string text = obs::to_prometheus(registry.snapshot());
  std::string problem;
  EXPECT_TRUE(obs::validate_prometheus(text, &problem)) << problem;
  EXPECT_NE(text.find("jobs_total{state=\"done\"} 7"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 1"), std::string::npos);
  // The NaN gauge is absent, not serialized as an unparseable value.
  EXPECT_EQ(text.find("temperature"), std::string::npos);
}

TEST(Exporters, JsonLinesEveryLineIsValidJson) {
  obs::MetricsRegistry registry;
  registry.counter("a_total").inc();
  registry.gauge("b").set(std::nan(""));  // must serialize as null
  registry.histogram("c_seconds", {1.0}).observe(0.5);
  const std::string lines = obs::to_json_lines(registry.snapshot(), "obs_test");
  std::istringstream stream(lines);
  std::string line;
  int count = 0;
  while (std::getline(stream, line)) {
    std::string problem;
    EXPECT_TRUE(obs::validate_json(line, &problem)) << problem << "\n" << line;
    ++count;
  }
  EXPECT_EQ(count, 3);
  EXPECT_NE(lines.find("null"), std::string::npos);
}

TEST(Exporters, ChromeTraceValidatesAndCarriesLinks) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  const obs::SpanId root = tracer.begin(obs::SpanKind::Case, "proc", "case-1", 0, 0.0);
  const obs::SpanId child =
      tracer.begin(obs::SpanKind::Activity, "A \"quoted\"\n", "case-1", root, 1.0);
  tracer.tag(child, "status", "ok");
  tracer.end(child, 2.0);
  tracer.end(root, 3.0);

  const std::string trace = obs::to_chrome_trace(tracer.spans());
  std::string problem;
  EXPECT_TRUE(obs::validate_json(trace, &problem)) << problem;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"parent\":" + std::to_string(root)), std::string::npos);
}

TEST(Exporters, ValidatorsRejectMalformedInput) {
  std::string problem;
  EXPECT_FALSE(obs::validate_json("{\"a\":}", &problem));
  EXPECT_FALSE(problem.empty());
  EXPECT_FALSE(obs::validate_json("{\"a\":1} trailing", &problem));
  EXPECT_FALSE(obs::validate_json("{'a':1}", &problem));  // no single quotes
  EXPECT_FALSE(obs::validate_json("[1,2,]", &problem));
  EXPECT_FALSE(obs::validate_json("", &problem));
  EXPECT_TRUE(obs::validate_json("{\"nested\":[1,2,{\"b\":null}]}", &problem)) << problem;

  EXPECT_FALSE(obs::validate_prometheus("", &problem));  // empty page = no metrics
  EXPECT_FALSE(obs::validate_prometheus("1metric 2\n", &problem));  // bad name
  EXPECT_FALSE(obs::validate_prometheus("metric notanumber\n", &problem));
  EXPECT_FALSE(obs::validate_prometheus("metric nan\n", &problem));  // not finite
  EXPECT_TRUE(obs::validate_prometheus("# HELP x y\nx{a=\"b\"} 4.5\n", &problem))
      << problem;
}

// -- synchronous machine span structure ----------------------------------------

TEST(EnactSpans, ForkJoinWorkflowEmitsOneActivitySpanPerExecution) {
  const wfl::ProcessDescription process = wfl::lower_to_process(
      wfl::parse_flow(
          "BEGIN, POD; P3DR1=P3DR; {FORK {P3DR2=P3DR} {P3DR3=P3DR} JOIN}; PSF, END"),
      "forky");
  const wfl::ServiceCatalogue catalogue = virolab::make_catalogue();
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  wfl::EnactmentOptions options;
  options.tracer = &tracer;
  options.trace_case_id = "case-sync";
  const wfl::EnactmentResult result =
      enact(process, virolab::make_case_description(), wfl::make_catalogue_executor(catalogue),
            options);
  ASSERT_TRUE(result.success) << result.error;

  const std::vector<obs::Span> spans = tracer.spans();
  ASSERT_FALSE(spans.empty());
  const obs::Span& root = spans.front();
  EXPECT_EQ(root.kind, obs::SpanKind::Case);
  ASSERT_NE(root.tag("success"), nullptr);
  EXPECT_EQ(*root.tag("success"), "true");

  std::map<std::string, int> activity_spans;
  int forks = 0;
  int joins = 0;
  for (const obs::Span& span : spans) {
    EXPECT_TRUE(span.closed) << span.name;
    EXPECT_LE(span.start, span.end);
    EXPECT_EQ(span.case_id, "case-sync");
    if (span.id != root.id) {
      EXPECT_EQ(span.parent, root.id);
      EXPECT_GE(span.start, root.start);
      EXPECT_LE(span.end, root.end);
    }
    if (span.kind == obs::SpanKind::Activity) {
      ++activity_spans[span.name];
      ASSERT_NE(span.tag("status"), nullptr) << span.name;
      EXPECT_EQ(*span.tag("status"), "ok");
      EXPECT_GT(span.end, span.start);  // an execution costs a machine step
    }
    if (span.kind == obs::SpanKind::Barrier) {
      ASSERT_NE(span.tag("type"), nullptr);
      if (*span.tag("type") == "fork") {
        ++forks;
        ASSERT_NE(span.tag("fanout"), nullptr);
        EXPECT_EQ(*span.tag("fanout"), "2");
      } else {
        ++joins;
        ASSERT_NE(span.tag("arrivals"), nullptr);
        EXPECT_EQ(*span.tag("arrivals"), "2");
      }
    }
  }
  // Exactly one Activity span per end-user execution of this loop-free flow.
  EXPECT_EQ(activity_spans.size(), 5u);
  for (const auto& [name, count] : activity_spans) EXPECT_EQ(count, 1) << name;
  EXPECT_EQ(forks, 1);
  EXPECT_EQ(joins, 1);
}

TEST(EnactSpans, LoopEmitsIterationSpansAndChoiceDecisions) {
  obs::SpanTracer tracer;
  tracer.set_enabled(true);
  wfl::EnactmentOptions options;
  options.tracer = &tracer;
  const wfl::ServiceCatalogue catalogue = virolab::make_catalogue();
  virolab::SyntheticKernels kernels;
  const auto executor = [&](const wfl::Activity& activity,
                            const wfl::DataSet& state)
      -> std::optional<std::vector<wfl::DataSpec>> {
    const wfl::ServiceType* service = catalogue.find(activity.service_name);
    if (service == nullptr) return std::nullopt;
    auto bindings = service->bind_inputs(state);
    if (!bindings.has_value()) return std::nullopt;
    return kernels.execute(*service, *bindings, activity.output_data);
  };
  const wfl::EnactmentResult result = enact(
      virolab::make_fig10_process(), virolab::make_case_description(), executor, options);
  ASSERT_TRUE(result.success) << result.error;
  EXPECT_EQ(result.activities_executed, 12);  // two refinement passes

  int choices = 0;
  int iterations = 0;
  for (const obs::Span& span : tracer.spans()) {
    EXPECT_TRUE(span.closed);
    if (span.kind == obs::SpanKind::Choice) ++choices;
    if (span.kind == obs::SpanKind::Iteration) ++iterations;
  }
  EXPECT_EQ(choices, 2);     // loop decision taken twice (continue, then exit)
  EXPECT_EQ(iterations, 1);  // one back-edge pass opened and closed
}

// -- coordination service span structure (chaos crash + retry + replay) --------

using agent::AclMessage;
using agent::Performative;

class SpanClient : public agent::Agent {
 public:
  using Agent::Agent;
  void handle_message(const AclMessage& message) override { replies.push_back(message); }
  std::vector<AclMessage> replies;
};

struct ChaosTraceRun {
  std::vector<obs::Span> spans;
  std::string success;
};

/// One traced fig10 enactment where the container that would serve the
/// first dispatch crashes on delivery, forcing a visible retry.
ChaosTraceRun traced_chaos_run() {
  svc::EnvironmentOptions options;
  options.span_tracing = true;
  agent::AgentFault crash;
  crash.agent = "ac-1";
  crash.after_deliveries = 1;
  options.chaos.agent_faults.push_back(crash);
  options.chaos.seed = 11;
  auto environment = svc::make_environment(options);
  auto& client = environment->platform().spawn<SpanClient>("ui");

  AclMessage request;
  request.performative = Performative::Request;
  request.sender = client.name();
  request.receiver = svc::names::kCoordination;
  request.protocol = svc::protocols::kEnactCase;
  request.content = wfl::process_to_xml_string(virolab::make_fig10_process());
  request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  environment->platform().send(request);
  environment->run();

  ChaosTraceRun run;
  run.spans = environment->tracer().spans();
  if (!client.replies.empty()) run.success = client.replies.back().param("success");
  return run;
}

TEST(CoordinationSpans, ChaosCrashLeavesRetryTagsWithExactLinksAndOrdering) {
  const ChaosTraceRun run = traced_chaos_run();
  ASSERT_EQ(run.success, "true");
  ASSERT_FALSE(run.spans.empty());

  const obs::Span& root = run.spans.front();
  ASSERT_EQ(root.kind, obs::SpanKind::Case);
  EXPECT_TRUE(root.closed);
  ASSERT_NE(root.tag("success"), nullptr);
  EXPECT_EQ(*root.tag("success"), "true");

  bool saw_retry = false;
  for (const obs::Span& span : run.spans) {
    EXPECT_TRUE(span.closed) << span.name;
    EXPECT_LE(span.start, span.end) << span.name;
    EXPECT_EQ(span.case_id, root.case_id);
    if (span.id == root.id) continue;
    // Every child hangs off the case span and lives inside its window.
    EXPECT_EQ(span.parent, root.id) << span.name;
    EXPECT_GE(span.start, root.start) << span.name;
    EXPECT_LE(span.end, root.end) << span.name;
    if (span.kind != obs::SpanKind::Activity) continue;
    if (span.tag("retry") != nullptr) {
      saw_retry = true;
      // The crash bounced the dispatch: the span records the fault, then the
      // re-dispatch that succeeded on another container.
      ASSERT_NE(span.tag("fault"), nullptr) << span.name;
      ASSERT_NE(span.tag("status"), nullptr) << span.name;
      EXPECT_EQ(*span.tag("status"), "ok") << span.name;
      ASSERT_NE(span.tag("container"), nullptr) << span.name;
      EXPECT_NE(*span.tag("container"), "ac-1") << span.name;
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(CoordinationSpans, SameSeedChaosRunReplaysSpansBitwise) {
  const ChaosTraceRun first = traced_chaos_run();
  const ChaosTraceRun second = traced_chaos_run();
  ASSERT_EQ(first.success, second.success);
  ASSERT_EQ(first.spans.size(), second.spans.size());
  for (std::size_t i = 0; i < first.spans.size(); ++i)
    EXPECT_EQ(first.spans[i], second.spans[i]) << "span " << i;
}

}  // namespace
}  // namespace ig
