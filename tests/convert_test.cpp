#include <gtest/gtest.h>

#include "planner/convert.hpp"
#include "planner/operators.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/validate.hpp"

namespace ig::planner {
namespace {

TEST(Convert, TerminalNumberingMatchesFigure10) {
  // Figure 11's tree uses P3DR four times; conversion numbers the instances
  // P3DR1..P3DR4 while singleton services stay unnumbered.
  const PlanNode tree = virolab::make_fig11_plan_tree();
  const wfl::FlowExpr expr = to_flow_expr(tree);
  const std::string text = expr.to_text();
  EXPECT_NE(text.find("POD"), std::string::npos);
  EXPECT_NE(text.find("P3DR1=P3DR"), std::string::npos);
  EXPECT_NE(text.find("P3DR4=P3DR"), std::string::npos);
  EXPECT_EQ(text.find("POD1"), std::string::npos);
  EXPECT_EQ(text.find("PSF1"), std::string::npos);
}

TEST(Convert, TreeToFlowToTreeRoundTrip) {
  const PlanNode original = virolab::make_fig11_plan_tree();
  const PlanNode recovered = from_flow_expr(to_flow_expr(original));
  EXPECT_EQ(recovered, original);
}

TEST(Convert, TreeToProcessMatchesFigure10Counts) {
  const PlanNode tree = virolab::make_fig11_plan_tree();
  const wfl::ProcessDescription process = to_process(tree, "PD-3DSD");
  // Figure 10: 7 end-user activities, 6 flow-control activities,
  // 15 transitions.
  EXPECT_EQ(process.end_user_activity_count(), 7u);
  EXPECT_EQ(process.flow_control_activity_count(), 6u);
  EXPECT_EQ(process.transition_count(), 15u);
  EXPECT_TRUE(wfl::is_valid(process));
}

TEST(Convert, ProcessToTreeRecoversFigure11) {
  const wfl::ProcessDescription process = virolab::make_fig10_process();
  const PlanNode tree = from_process(process);
  EXPECT_EQ(tree, virolab::make_fig11_plan_tree());
}

TEST(Convert, FullCircleThroughAllRepresentations) {
  const PlanNode original = virolab::make_fig11_plan_tree();
  const wfl::ProcessDescription process = to_process(original, "circle");
  const PlanNode recovered = from_process(process);
  EXPECT_EQ(recovered, original);
}

TEST(Convert, SequenceOfOneFlattens) {
  const PlanNode single = PlanNode::terminal("POD");
  const wfl::FlowExpr expr = to_flow_expr(single);
  EXPECT_EQ(expr.kind, wfl::FlowExpr::Kind::Activity);
  EXPECT_EQ(from_flow_expr(expr), single);
}

TEST(Convert, SelectiveGuardsSurvive) {
  std::vector<wfl::Condition> guards;
  guards.push_back(wfl::Condition::parse("X.V > 1"));
  guards.push_back(wfl::Condition::parse("X.V <= 1"));
  const PlanNode tree = PlanNode::selective(
      {PlanNode::terminal("POD"), PlanNode::terminal("PSF")}, guards);
  const PlanNode recovered = from_flow_expr(to_flow_expr(tree));
  EXPECT_EQ(recovered, tree);
  ASSERT_EQ(recovered.guards.size(), 2u);
  EXPECT_EQ(recovered.guards[0].to_string(), "X.V > 1");
}

TEST(Convert, IterativeConditionSurvives) {
  const PlanNode tree =
      PlanNode::iterative({PlanNode::terminal("POR"), PlanNode::terminal("PSF")},
                          wfl::Condition::parse("R.Value > 8"));
  const PlanNode recovered = from_flow_expr(to_flow_expr(tree));
  EXPECT_EQ(recovered, tree);
  EXPECT_EQ(recovered.continue_condition.to_string(), "R.Value > 8");
}

TEST(Convert, RandomTreesRoundTripThroughProcess) {
  util::Rng rng(77);
  const auto catalogue = virolab::make_catalogue();
  int round_tripped = 0;
  for (int i = 0; i < 60; ++i) {
    const PlanNode tree = random_tree(rng, catalogue, 25);
    const wfl::ProcessDescription process = to_process(tree, "rnd");
    EXPECT_TRUE(wfl::is_valid(process)) << tree.to_tree_string();
    const PlanNode recovered = from_process(process);
    // Sequence flattening: a Sequential whose parent is Sequential collapses
    // in the flow expression, so compare via a second conversion instead of
    // node-for-node equality.
    EXPECT_EQ(to_flow_expr(recovered).to_text(), to_flow_expr(tree).to_text());
    ++round_tripped;
  }
  EXPECT_EQ(round_tripped, 60);
}

}  // namespace
}  // namespace ig::planner
