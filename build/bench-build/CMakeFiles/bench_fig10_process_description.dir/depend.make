# Empty dependencies file for bench_fig10_process_description.
# This may be replaced when dependencies are built.
