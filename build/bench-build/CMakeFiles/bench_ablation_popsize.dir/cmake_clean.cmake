file(REMOVE_RECURSE
  "../bench/bench_ablation_popsize"
  "../bench/bench_ablation_popsize.pdb"
  "CMakeFiles/bench_ablation_popsize.dir/bench_ablation_popsize.cpp.o"
  "CMakeFiles/bench_ablation_popsize.dir/bench_ablation_popsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_popsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
