file(REMOVE_RECURSE
  "CMakeFiles/ig_grid.dir/container.cpp.o"
  "CMakeFiles/ig_grid.dir/container.cpp.o.d"
  "CMakeFiles/ig_grid.dir/failure.cpp.o"
  "CMakeFiles/ig_grid.dir/failure.cpp.o.d"
  "CMakeFiles/ig_grid.dir/grid.cpp.o"
  "CMakeFiles/ig_grid.dir/grid.cpp.o.d"
  "CMakeFiles/ig_grid.dir/hardware.cpp.o"
  "CMakeFiles/ig_grid.dir/hardware.cpp.o.d"
  "CMakeFiles/ig_grid.dir/network.cpp.o"
  "CMakeFiles/ig_grid.dir/network.cpp.o.d"
  "CMakeFiles/ig_grid.dir/node.cpp.o"
  "CMakeFiles/ig_grid.dir/node.cpp.o.d"
  "CMakeFiles/ig_grid.dir/sim.cpp.o"
  "CMakeFiles/ig_grid.dir/sim.cpp.o.d"
  "libig_grid.a"
  "libig_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
