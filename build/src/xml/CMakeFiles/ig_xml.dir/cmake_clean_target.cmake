file(REMOVE_RECURSE
  "libig_xml.a"
)
