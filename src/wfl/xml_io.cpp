#include "wfl/xml_io.hpp"

#include "meta/xml_io.hpp"
#include "util/strings.hpp"

namespace ig::wfl {

namespace {

ActivityKind kind_from_string(const std::string& text) {
  if (text == "Begin") return ActivityKind::Begin;
  if (text == "End") return ActivityKind::End;
  if (text == "End-user") return ActivityKind::EndUser;
  if (text == "Fork") return ActivityKind::Fork;
  if (text == "Join") return ActivityKind::Join;
  if (text == "Choice") return ActivityKind::Choice;
  if (text == "Merge") return ActivityKind::Merge;
  throw ProcessError("unknown activity kind '" + text + "'");
}

}  // namespace

xml::Document process_to_xml(const ProcessDescription& process) {
  xml::Document document("process");
  document.root().set_attribute("name", process.name());
  for (const auto& activity : process.activities()) {
    xml::Element& node = document.root().add_child("activity");
    node.set_attribute("id", activity.id);
    node.set_attribute("name", activity.name);
    node.set_attribute("kind", to_string(activity.kind));
    if (!activity.service_name.empty()) node.set_attribute("service", activity.service_name);
    if (!activity.constraint.empty()) node.set_attribute("constraint", activity.constraint);
    for (const auto& input : activity.input_data) node.add_child_text("input", input);
    for (const auto& output : activity.output_data) node.add_child_text("output", output);
  }
  for (const auto& transition : process.transitions()) {
    xml::Element& node = document.root().add_child("transition");
    node.set_attribute("id", transition.id);
    node.set_attribute("source", transition.source);
    node.set_attribute("destination", transition.destination);
    if (!transition.guard.is_trivially_true())
      node.set_attribute("guard", transition.guard.to_string());
  }
  return document;
}

ProcessDescription process_from_xml(const xml::Document& document) {
  const xml::Element& root = document.root();
  if (root.name() != "process") throw ProcessError("root element must be <process>");
  ProcessDescription process(root.attribute_or("name", "process"));
  for (const auto* node : root.find_children("activity")) {
    Activity activity;
    activity.id = node->attribute_or("id", "");
    activity.name = node->attribute_or("name", "");
    activity.kind = kind_from_string(node->attribute_or("kind", "End-user"));
    activity.service_name = node->attribute_or("service", "");
    activity.constraint = node->attribute_or("constraint", "");
    for (const auto* input : node->find_children("input"))
      activity.input_data.push_back(input->text());
    for (const auto* output : node->find_children("output"))
      activity.output_data.push_back(output->text());
    process.add_activity(std::move(activity));
  }
  for (const auto* node : root.find_children("transition")) {
    Condition guard;
    if (node->has_attribute("guard")) guard = Condition::parse(node->attribute_or("guard", ""));
    process.add_transition(node->attribute_or("source", ""),
                           node->attribute_or("destination", ""), std::move(guard),
                           node->attribute_or("id", ""));
  }
  return process;
}

void data_to_xml(const DataSpec& data, xml::Element& parent) {
  xml::Element& node = parent.add_child("data");
  node.set_attribute("name", data.name());
  for (const auto& [property, value] : data.properties()) {
    xml::Element& property_node = node.add_child("property");
    property_node.set_attribute("name", property);
    meta::value_to_xml(value, property_node, "value");
  }
}

DataSpec data_from_xml(const xml::Element& element) {
  DataSpec data(element.attribute_or("name", ""));
  for (const auto* property_node : element.find_children("property")) {
    const xml::Element* value_node = property_node->find_child("value");
    if (value_node == nullptr) continue;
    data.set(property_node->attribute_or("name", ""), meta::value_from_xml(*value_node));
  }
  return data;
}

std::string dataset_to_xml_string(const DataSet& data) {
  xml::Document document("dataset");
  for (const auto& item : data.items()) data_to_xml(item, document.root());
  return document.to_string();
}

DataSet dataset_from_xml_string(const std::string& text) {
  const xml::Document document = xml::parse(text);
  DataSet data;
  for (const auto* node : document.root().find_children("data")) data.put(data_from_xml(*node));
  return data;
}

xml::Document case_to_xml(const CaseDescription& case_description) {
  xml::Document document("case");
  xml::Element& root = document.root();
  if (!case_description.id().empty()) root.set_attribute("id", case_description.id());
  root.set_attribute("name", case_description.name());
  if (!case_description.process_name().empty())
    root.set_attribute("process", case_description.process_name());
  for (const auto& item : case_description.initial_data().items()) data_to_xml(item, root);
  for (const auto& goal : case_description.goals()) {
    xml::Element& node = root.add_child("goal");
    node.set_attribute("description", goal.description);
    node.set_text(goal.condition.to_string());
  }
  for (const auto& [name, condition] : case_description.constraints()) {
    xml::Element& node = root.add_child("constraint");
    node.set_attribute("name", name);
    node.set_text(condition.to_string());
  }
  for (const auto& result : case_description.expected_results()) {
    root.add_child("result").set_attribute("name", result);
  }
  return document;
}

CaseDescription case_from_xml(const xml::Document& document) {
  const xml::Element& root = document.root();
  if (root.name() != "case") throw ProcessError("root element must be <case>");
  CaseDescription case_description(root.attribute_or("name", "case"));
  case_description.set_id(root.attribute_or("id", ""));
  case_description.set_process_name(root.attribute_or("process", ""));
  for (const auto* node : root.find_children("data"))
    case_description.initial_data().put(data_from_xml(*node));
  for (const auto* node : root.find_children("goal")) {
    GoalSpec goal;
    goal.description = node->attribute_or("description", "");
    goal.condition = Condition::parse(node->text());
    case_description.add_goal(std::move(goal));
  }
  for (const auto* node : root.find_children("constraint")) {
    case_description.add_constraint(node->attribute_or("name", ""),
                                    Condition::parse(node->text()));
  }
  for (const auto* node : root.find_children("result"))
    case_description.add_expected_result(node->attribute_or("name", ""));
  return case_description;
}

std::string process_to_xml_string(const ProcessDescription& process) {
  return process_to_xml(process).to_string();
}

ProcessDescription process_from_xml_string(const std::string& text) {
  return process_from_xml(xml::parse(text));
}

std::string case_to_xml_string(const CaseDescription& case_description) {
  return case_to_xml(case_description).to_string();
}

CaseDescription case_from_xml_string(const std::string& text) {
  return case_from_xml(xml::parse(text));
}

}  // namespace ig::wfl
