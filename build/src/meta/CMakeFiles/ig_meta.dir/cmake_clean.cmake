file(REMOVE_RECURSE
  "CMakeFiles/ig_meta.dir/ontology.cpp.o"
  "CMakeFiles/ig_meta.dir/ontology.cpp.o.d"
  "CMakeFiles/ig_meta.dir/standard.cpp.o"
  "CMakeFiles/ig_meta.dir/standard.cpp.o.d"
  "CMakeFiles/ig_meta.dir/value.cpp.o"
  "CMakeFiles/ig_meta.dir/value.cpp.o.d"
  "CMakeFiles/ig_meta.dir/xml_io.cpp.o"
  "CMakeFiles/ig_meta.dir/xml_io.cpp.o.d"
  "libig_meta.a"
  "libig_meta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ig_meta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
