#include "services/ontology_service.hpp"

#include "meta/xml_io.hpp"
#include "services/protocol.hpp"

namespace ig::svc {

using agent::AclMessage;
using agent::Performative;

void OntologyService::store(meta::Ontology ontology) {
  ontologies_.insert_or_assign(ontology.name(), std::move(ontology));
}

const meta::Ontology* OntologyService::find(const std::string& name) const {
  auto it = ontologies_.find(name);
  return it != ontologies_.end() ? &it->second : nullptr;
}

std::vector<std::string> OntologyService::ontology_names() const {
  std::vector<std::string> names;
  names.reserve(ontologies_.size());
  for (const auto& [name, ontology] : ontologies_) names.push_back(name);
  return names;
}

void OntologyService::on_start() {
  register_with_information_service(*this, platform(), "ontology");
}

void OntologyService::handle_message(const AclMessage& message) {
  if (message.protocol == protocols::kStoreOntology) {
    try {
      meta::Ontology ontology = meta::from_xml_string(message.content);
      // Reject documents whose instances violate their own schema.
      const auto issues = ontology.validate();
      if (!issues.empty()) {
        AclMessage reply = message.make_reply(Performative::Refuse);
        reply.params["error"] = "ontology has " + std::to_string(issues.size()) +
                                " validation issues (first: " + issues.front().message + ")";
        send(std::move(reply));
        return;
      }
      const std::string name = ontology.name();
      store(std::move(ontology));
      AclMessage reply = message.make_reply(Performative::Agree);
      reply.params["name"] = name;
      send(std::move(reply));
    } catch (const std::exception& error) {
      AclMessage reply = message.make_reply(Performative::Failure);
      reply.params["error"] = error.what();
      send(std::move(reply));
    }
    return;
  }

  if (message.protocol == protocols::kGetOntology || message.protocol == protocols::kGetShell) {
    const std::string name = message.param("name");
    const meta::Ontology* ontology = find(name);
    if (ontology == nullptr) {
      AclMessage reply = message.make_reply(Performative::Failure);
      reply.params["error"] = "unknown ontology '" + name + "'";
      send(std::move(reply));
      return;
    }
    AclMessage reply = message.make_reply(Performative::Inform);
    reply.params["name"] = name;
    reply.ontology = name;
    reply.content = message.protocol == protocols::kGetShell
                        ? meta::to_xml_string(ontology->shell())
                        : meta::to_xml_string(*ontology);
    send(std::move(reply));
    return;
  }

  if (!should_bounce_unknown(message)) return;
  send(make_not_understood(message, "unknown protocol '" + message.protocol + "'"));
}

}  // namespace ig::svc
