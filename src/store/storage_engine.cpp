#include "store/storage_engine.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "store/codec.hpp"
#include "store/crc32c.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace ig::store {
namespace {

// WAL record payload types.
constexpr std::uint8_t kPutRecord = 1;
constexpr std::uint8_t kEraseRecord = 2;
constexpr std::uint8_t kEventRecord = 3;

// Snapshot frame payload types.
constexpr std::uint8_t kSnapMeta = 10;
constexpr std::uint8_t kSnapKv = 11;
constexpr std::uint8_t kSnapState = 12;
constexpr std::uint8_t kSnapEnd = 13;
constexpr std::uint32_t kSnapVersion = 1;

std::string snapshot_path(const std::string& dir, Lsn lsn) {
  char name[40];
  std::snprintf(name, sizeof name, "snap-%016llu.snap",
                static_cast<unsigned long long>(lsn));
  return dir + "/" + name;
}

/// Appends one CRC frame (same u32 len + u32 crc layout as segments) to a
/// byte buffer.
void append_frame(std::string& out, std::string_view payload) {
  Writer writer(out);
  writer.u32(static_cast<std::uint32_t>(payload.size()));
  writer.u32(crc32c(payload));
  out.append(payload.data(), payload.size());
}

/// Splits a buffer back into frame payloads; returns false on any corrupt
/// or truncated frame (the whole snapshot is then untrusted).
bool split_frames(std::string_view bytes, std::vector<std::string_view>& frames) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < 8) return false;
    Reader reader(bytes.substr(offset, 8));
    const std::uint32_t length = reader.u32();
    const std::uint32_t stored_crc = reader.u32();
    if (bytes.size() - offset - 8 < length) return false;
    const std::string_view payload = bytes.substr(offset + 8, length);
    if (crc32c(payload) != stored_crc) return false;
    frames.push_back(payload);
    offset += 8 + length;
  }
  return true;
}

std::vector<std::string> list_with_suffix(const std::string& dir, const std::string& suffix) {
  std::vector<std::string> paths;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (const dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name.rfind("snap-", 0) == 0 && name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
        paths.push_back(dir + "/" + name);
    }
    ::closedir(d);
  }
  std::sort(paths.begin(), paths.end());  // zero-padded LSN => lexicographic = numeric
  return paths;
}

std::vector<std::string> list_snapshots(const std::string& dir) {
  return list_with_suffix(dir, ".snap");
}

}  // namespace

StorageEngine::StorageEngine(Options options, EventReplayFn event_replay)
    : options_(std::move(options)),
      fops_(options_.file_ops != nullptr ? options_.file_ops : &posix_file_ops()) {
  if (options_.data_dir.empty()) return;
  const auto started = std::chrono::steady_clock::now();
  WalOptions wal_options;
  wal_options.dir = options_.data_dir;
  wal_options.segment_size = options_.segment_size;
  wal_options.sync = options_.sync;
  wal_options.group_window_us = options_.group_window_us;
  wal_options.file_ops = options_.file_ops;
  wal_ = std::make_unique<WriteAheadLog>(std::move(wal_options));
  remove_stale_snapshot_tmps();
  load_snapshot();
  wal_->skip_to(snapshot_lsn_);  // no-op unless the log fell behind the snapshot
  wal_->replay(snapshot_lsn_, [&](Lsn, std::string_view payload) {
    Reader reader(payload);
    switch (reader.u8()) {
      case kPutRecord: {
        const std::string_view key = reader.str();
        const std::string_view value = reader.str();
        if (reader.ok()) map_[std::string(key)] = std::string(value);
        break;
      }
      case kEraseRecord: {
        const std::string_view key = reader.str();
        if (reader.ok()) map_.erase(std::string(key));
        break;
      }
      case kEventRecord: {
        const std::string_view stream = reader.str();
        const std::string_view event = reader.str();
        if (reader.ok() && event_replay) event_replay(stream, event);
        break;
      }
      default:
        IG_LOG_WARN("store") << "skipping WAL record of unknown type";
        break;
    }
    ++replayed_records_;
  });
  recovery_ms_ =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count();
}

StorageEngine::~StorageEngine() = default;

void StorageEngine::put(const std::string& key, std::string value) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (wal_ == nullptr) {
    map_.insert_or_assign(key, std::move(value));
    ++memory_lsn_;
    return;
  }
  std::string record;
  Writer writer(record);
  writer.u8(kPutRecord);
  writer.str(key);
  writer.str(value);
  const Lsn lsn = wal_->append(record);
  map_.insert_or_assign(key, std::move(value));
  lock.unlock();
  wal_->commit(lsn);  // durable before the caller sees the put succeed
}

bool StorageEngine::erase(const std::string& key) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool existed = map_.erase(key) > 0;
  if (wal_ == nullptr) {
    if (existed) ++memory_lsn_;
    return existed;
  }
  if (!existed) return false;
  std::string record;
  Writer writer(record);
  writer.u8(kEraseRecord);
  writer.str(key);
  const Lsn lsn = wal_->append(record);
  lock.unlock();
  wal_->commit(lsn);
  return true;
}

std::optional<std::string> StorageEngine::get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> StorageEngine::keys_with_prefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> keys;
  for (auto it = map_.lower_bound(prefix); it != map_.end(); ++it) {
    if (!util::starts_with(it->first, prefix)) break;
    keys.push_back(it->first);
  }
  return keys;
}

std::size_t StorageEngine::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

Lsn StorageEngine::append_event(std::string_view stream, std::string_view payload) {
  std::string record;
  Writer writer(record);
  writer.u8(kEventRecord);
  writer.str(stream);
  writer.str(payload);
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ == nullptr) return ++memory_lsn_;
  return wal_->append(record);
}

void StorageEngine::commit() {
  if (wal_ != nullptr) wal_->commit(wal_->last_lsn());
}

void StorageEngine::set_state_provider(const std::string& stream,
                                       std::function<std::string()> provider) {
  std::lock_guard<std::mutex> lock(mutex_);
  providers_[stream] = std::move(provider);
}

std::string StorageEngine::recovered_state(const std::string& stream) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = recovered_.find(stream);
  return it == recovered_.end() ? std::string() : it->second;
}

bool StorageEngine::snapshot() {
  if (wal_ == nullptr) return false;
  Lsn lsn = 0;
  std::vector<std::pair<std::string, std::string>> kv;
  std::map<std::string, std::function<std::string()>> providers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (snapshot_in_progress_) return false;
    snapshot_in_progress_ = true;
    // Read the LSN *before* collecting state: anything a provider bakes in
    // past this point is also replayed after recovery, which is safe
    // because stream replay is idempotent (and KV replay is last-write-wins
    // in LSN order, converging on the same map).
    lsn = wal_->last_lsn();
    kv.assign(map_.begin(), map_.end());
    providers = providers_;
  }
  // Providers run outside the store mutex: they lock their own subsystem
  // (e.g. the enactment engine's mutex) and must not call back into us.
  std::vector<std::pair<std::string, std::string>> blobs;
  blobs.reserve(providers.size());
  for (const auto& [stream, provider] : providers) blobs.emplace_back(stream, provider());
  // The WAL prefix the snapshot claims to cover must be durable first —
  // otherwise a crash could leave a snapshot referencing records the log
  // never persisted. A poisoned log cannot make that promise, so snapshot
  // failure (like every other disk failure here) reports as `false` and
  // the previous snapshot stays authoritative.
  bool ok = false;
  try {
    wal_->commit(lsn);
    ok = write_snapshot_file(lsn, kv, blobs);
  } catch (const Error&) {
    ok = false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot_in_progress_ = false;
    if (ok) {
      snapshot_lsn_ = lsn;
      ++snapshots_written_;
    }
  }
  if (ok && options_.auto_compact) compact();
  return ok;
}

bool StorageEngine::maybe_snapshot() {
  if (wal_ == nullptr || options_.snapshot_interval == 0) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (snapshot_in_progress_ ||
        wal_->last_lsn() - snapshot_lsn_ < options_.snapshot_interval)
      return false;
  }
  return snapshot();
}

std::size_t StorageEngine::compact() {
  if (wal_ == nullptr) return 0;
  Lsn lsn = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lsn = snapshot_lsn_;
  }
  if (lsn == 0) return 0;
  const std::size_t removed = wal_->remove_segments_below(lsn);
  // Older snapshots are strictly dominated by the newest one.
  const std::string keep = snapshot_path(options_.data_dir, lsn);
  for (const std::string& path : list_snapshots(options_.data_dir))
    if (path < keep) fops_->unlink(path);
  if (removed > 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    segments_compacted_ += removed;
  }
  return removed;
}

StoreStats StorageEngine::stats() const {
  StoreStats stats;
  if (wal_ != nullptr) {
    stats.wal = wal_->stats();
    stats.segments = wal_->segment_count();
    stats.last_lsn = wal_->last_lsn();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats.durable = wal_ != nullptr;
  stats.keys = map_.size();
  if (wal_ == nullptr) stats.last_lsn = memory_lsn_;
  stats.snapshot_lsn = snapshot_lsn_;
  stats.snapshots_written = snapshots_written_;
  stats.segments_compacted = segments_compacted_;
  stats.replayed_records = replayed_records_;
  stats.recovery_ms = recovery_ms_;
  return stats;
}

void StorageEngine::publish_metrics(obs::MetricsRegistry& registry,
                                    const obs::Labels& labels) const {
  const StoreStats stats = this->stats();
  registry.counter("store_wal_appends_total", labels).set_to(stats.wal.appends);
  registry.counter("store_fsyncs_total", labels).set_to(stats.wal.fsyncs);
  registry.counter("store_group_commits_total", labels).set_to(stats.wal.group_commits);
  registry.counter("store_snapshots_total", labels).set_to(stats.snapshots_written);
  registry.counter("store_segments_compacted_total", labels).set_to(stats.segments_compacted);
  registry.counter("store_wal_records_replayed_total", labels).set_to(stats.replayed_records);
  registry.counter("store_fsync_failures_total", labels).set_to(stats.wal.fsync_failures);
  registry.gauge("store_poisoned", labels).set(stats.wal.poisoned ? 1.0 : 0.0);
  registry.gauge("store_segments", labels).set(static_cast<double>(stats.segments));
  registry.gauge("store_wal_records", labels).set(static_cast<double>(stats.wal.records));
  registry.gauge("store_keys", labels).set(static_cast<double>(stats.keys));
  registry.gauge("store_last_snapshot_lsn", labels)
      .set(static_cast<double>(stats.snapshot_lsn));
  registry.gauge("store_recovery_ms", labels).set(stats.recovery_ms);
}

void StorageEngine::remove_stale_snapshot_tmps() {
  // A crash mid-snapshot leaves `snap-*.snap.tmp` behind: never renamed,
  // so never authoritative, and without this sweep it would sit there
  // forever (or worse, confuse a human into trusting it). The previous
  // good snapshot — the one the rename never replaced — stays in charge.
  for (const std::string& path : list_with_suffix(options_.data_dir, ".snap.tmp")) {
    IG_LOG_WARN("store") << "removing stale snapshot tmp " << path;
    fops_->unlink(path);
  }
}

void StorageEngine::load_snapshot() {
  std::vector<std::string> paths = list_snapshots(options_.data_dir);
  // Newest first; fall back through older snapshots on corruption.
  std::reverse(paths.begin(), paths.end());
  for (const std::string& path : paths) {
    const int fd = fops_->open(path, O_RDONLY, 0);
    if (fd < 0) continue;
    std::string bytes;
    bool read_ok = true;
    const off_t file_size = fops_->size(fd);
    if (file_size < 0) read_ok = false;
    if (read_ok) {
      bytes.resize(static_cast<std::size_t>(file_size));
      std::size_t got = 0;
      while (got < bytes.size()) {
        const ssize_t n =
            fops_->pread(fd, bytes.data() + got, bytes.size() - got, static_cast<off_t>(got));
        if (n <= 0) {
          read_ok = false;
          break;
        }
        got += static_cast<std::size_t>(n);
      }
    }
    fops_->close(fd);
    if (!read_ok) {
      // Unreadable is indistinguishable from corrupt for our purposes:
      // fall through to the deletion below and try the next-older one.
      IG_LOG_WARN("store") << "dropping unreadable snapshot " << path;
      fops_->unlink(path);
      continue;
    }

    std::vector<std::string_view> frames;
    std::map<std::string, std::string> map;
    std::map<std::string, std::string> recovered;
    Lsn lsn = 0;
    bool complete = false;
    bool valid = split_frames(bytes, frames) && frames.size() >= 2;
    if (valid) {
      Reader meta(frames.front());
      valid = meta.u8() == kSnapMeta && meta.u32() == kSnapVersion;
      lsn = meta.u64();
      valid = valid && meta.ok();
    }
    if (valid) {
      for (std::size_t i = 1; valid && i < frames.size(); ++i) {
        Reader reader(frames[i]);
        switch (reader.u8()) {
          case kSnapKv: {
            const std::string_view key = reader.str();
            const std::string_view value = reader.str();
            valid = reader.ok();
            if (valid) map[std::string(key)] = std::string(value);
            break;
          }
          case kSnapState: {
            const std::string_view stream = reader.str();
            const std::string_view blob = reader.str();
            valid = reader.ok();
            if (valid) recovered[std::string(stream)] = std::string(blob);
            break;
          }
          case kSnapEnd:
            complete = reader.u64() == frames.size() - 2 && reader.ok() &&
                       i == frames.size() - 1;
            valid = complete;
            break;
          default:
            valid = false;
            break;
        }
      }
    }
    if (valid && complete) {
      map_ = std::move(map);
      recovered_ = std::move(recovered);
      snapshot_lsn_ = lsn;
      return;
    }
    // A corrupt snapshot buys nothing at the next open either.
    IG_LOG_WARN("store") << "dropping corrupt snapshot " << path;
    fops_->unlink(path);
  }
}

bool StorageEngine::write_snapshot_file(
    Lsn lsn, const std::vector<std::pair<std::string, std::string>>& kv,
    const std::vector<std::pair<std::string, std::string>>& blobs) {
  std::string buffer;
  {
    std::string payload;
    Writer writer(payload);
    writer.u8(kSnapMeta);
    writer.u32(kSnapVersion);
    writer.u64(lsn);
    append_frame(buffer, payload);
  }
  for (const auto& [key, value] : kv) {
    std::string payload;
    Writer writer(payload);
    writer.u8(kSnapKv);
    writer.str(key);
    writer.str(value);
    append_frame(buffer, payload);
  }
  for (const auto& [stream, blob] : blobs) {
    std::string payload;
    Writer writer(payload);
    writer.u8(kSnapState);
    writer.str(stream);
    writer.str(blob);
    append_frame(buffer, payload);
  }
  {
    std::string payload;
    Writer writer(payload);
    writer.u8(kSnapEnd);
    writer.u64(kv.size() + blobs.size());
    append_frame(buffer, payload);
  }

  // tmp + fsync + rename: the snapshot either exists completely under its
  // final name or not at all. On *any* failure the tmp is unlinked (best
  // effort) and the previous snapshot stays authoritative — snapshot
  // failure degrades recovery time, never correctness.
  const std::string final_path = snapshot_path(options_.data_dir, lsn);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = fops_->open(tmp_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < buffer.size()) {
    const ssize_t n = fops_->pwrite(fd, buffer.data() + written, buffer.size() - written,
                                    static_cast<off_t>(written));
    if (n <= 0) {
      fops_->close(fd);
      fops_->unlink(tmp_path);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (options_.sync != SyncMode::kNone && fops_->fsync(fd) != 0) {
    // An unsynced snapshot must never be renamed into authority: a crash
    // could then leave a *newest* snapshot with silently missing pages.
    fops_->close(fd);
    fops_->unlink(tmp_path);
    return false;
  }
  fops_->close(fd);
  if (fops_->rename(tmp_path, final_path) != 0) {
    fops_->unlink(tmp_path);
    return false;
  }
  if (options_.sync != SyncMode::kNone) {
    const int dir_fd = fops_->open(options_.data_dir, O_RDONLY | O_DIRECTORY, 0);
    if (dir_fd >= 0) {
      fops_->fsync(dir_fd);
      fops_->close(dir_fd);
    }
  }
  return true;
}

}  // namespace ig::store
