// Tests for the extension features built on the paper's Section 1
// motivations: enactment checkpoint/restore, soft-deadline matchmaking, and
// hierarchical (DNS-style) information services.
#include <gtest/gtest.h>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "services/user_interface.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {
namespace {

using agent::AclMessage;
using agent::Performative;

class Client : public agent::Agent {
 public:
  explicit Client(std::string name = "ui") : Agent(std::move(name)) {}
  void handle_message(const AclMessage& message) override { replies.push_back(message); }
  void request(agent::AgentPlatform& platform, AclMessage message) {
    message.sender = name();
    platform.send(std::move(message));
  }
  const AclMessage* last_with(const std::string& protocol) const {
    for (auto it = replies.rbegin(); it != replies.rend(); ++it) {
      if (it->protocol == protocol) return &*it;
    }
    return nullptr;
  }
  std::vector<AclMessage> replies;
};

EnvironmentOptions small_options(std::uint64_t seed = 9) {
  EnvironmentOptions options;
  options.topology.domains = 2;
  options.topology.nodes_per_domain = 3;
  options.gp.population_size = 120;
  options.gp.generations = 15;
  options.seed = seed;
  return options;
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

TEST(Checkpoint, SnapshotMidRunAndRestoreSkipsCompletedWork) {
  auto environment = make_environment(small_options());
  auto& platform = environment->platform();
  auto& client = platform.spawn<Client>("ui");

  AclMessage enact;
  enact.performative = Performative::Request;
  enact.receiver = names::kCoordination;
  enact.protocol = protocols::kEnactCase;
  enact.content = wfl::process_to_xml_string(virolab::make_fig10_process());
  enact.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  client.request(platform, enact);

  // Run only part of the case: advance virtual time until at least one
  // end-user activity has completed, then snapshot. (How long the first
  // activity takes depends on the random topology, so probe in steps.)
  const AclMessage* checkpoint = nullptr;
  for (double horizon = 50.0; horizon <= 6400.0; horizon *= 2.0) {
    environment->sim().run_until(horizon);
    AclMessage snapshot;
    snapshot.performative = Performative::Request;
    snapshot.receiver = names::kCoordination;
    snapshot.protocol = protocols::kCheckpointCase;
    snapshot.params["case"] = "case-1";
    client.request(platform, snapshot);
    // Deliver only the checkpoint exchange, not the whole calendar.
    environment->sim().run_until(environment->sim().now() + 1.0);
    checkpoint = client.last_with(protocols::kCheckpointCase);
    ASSERT_NE(checkpoint, nullptr);
    if (checkpoint->performative == Performative::Failure) break;  // case finished
    if (checkpoint->content.find("<completed") != std::string::npos) break;
  }
  ASSERT_NE(checkpoint, nullptr);
  ASSERT_EQ(checkpoint->performative, Performative::Inform) << checkpoint->param("error");
  ASSERT_NE(checkpoint->content.find("<completed"), std::string::npos)
      << "no activity completed before the case ended";

  // Restore into a *fresh* environment (the original machine is gone).
  auto restored_env = make_environment(small_options(10));
  auto& restored_platform = restored_env->platform();
  auto& restored_client = restored_platform.spawn<Client>("ui");
  AclMessage restore;
  restore.performative = Performative::Request;
  restore.receiver = names::kCoordination;
  restore.protocol = protocols::kRestoreCase;
  restore.content = checkpoint->content;
  restored_client.request(restored_platform, restore);
  restored_env->run();

  const AclMessage* outcome = restored_client.last_with(protocols::kCaseCompleted);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->param("success"), "true") << outcome->param("error");
  // Work done before the checkpoint was replayed from the snapshot, not
  // re-executed.
  EXPECT_GT(std::stoi(outcome->param("activities-replayed")), 0);
}

/// Count credited in a checkpoint document for one activity id.
int checkpoint_count(const std::string& checkpoint_xml, const std::string& activity) {
  const std::string needle = "activity=\"" + activity + "\" count=\"";
  const auto pos = checkpoint_xml.find(needle);
  if (pos == std::string::npos) return 0;
  return std::atoi(checkpoint_xml.c_str() + pos + needle.size());
}

TEST(Checkpoint, FailureMidForkRestoreReplaysCompletedBranchOnly) {
  // Drive fig10 until the FORK (A6) is partially done — some of the three
  // parallel P3DR branches (A7/A8/A9) completed, some still running — then
  // arm 100% dispatch failure so the case dies mid-FORK. The post-mortem
  // snapshot must credit only the completed branches, and a restore on a
  // healthy environment must replay those and re-execute the rest.
  EnvironmentOptions options = small_options();
  options.coordination.max_replans = 0;  // fail fast once the injector arms
  auto environment = make_environment(options);
  auto& platform = environment->platform();
  auto& client = platform.spawn<Client>("ui");

  AclMessage enact;
  enact.performative = Performative::Request;
  enact.receiver = names::kCoordination;
  enact.protocol = protocols::kEnactCase;
  enact.content = wfl::process_to_xml_string(virolab::make_fig10_process());
  enact.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  client.request(platform, enact);

  // Probe in fine virtual-time steps for a snapshot where the FORK branch
  // completions are unequal (equal counts means between passes, not mid-FORK).
  bool mid_fork = false;
  for (double horizon = 2.0; horizon <= 6400.0 && !mid_fork; horizon += 4.0) {
    environment->sim().run_until(horizon);
    AclMessage snapshot;
    snapshot.performative = Performative::Request;
    snapshot.receiver = names::kCoordination;
    snapshot.protocol = protocols::kCheckpointCase;
    snapshot.params["case"] = "case-1";
    client.request(platform, snapshot);
    environment->sim().run_until(environment->sim().now() + 1.0);
    const AclMessage* checkpoint = client.last_with(protocols::kCheckpointCase);
    ASSERT_NE(checkpoint, nullptr);
    ASSERT_EQ(checkpoint->performative, Performative::Inform)
        << "case ended before the FORK was caught mid-flight";
    const int a7 = checkpoint_count(checkpoint->content, "A7");
    const int a8 = checkpoint_count(checkpoint->content, "A8");
    const int a9 = checkpoint_count(checkpoint->content, "A9");
    mid_fork = !(a7 == a8 && a8 == a9);
  }
  ASSERT_TRUE(mid_fork) << "never observed a partially completed FORK";

  // Kill the case: every dispatch from here on fails, and with no
  // re-planning budget the enactment reports failure.
  environment->injector().set_failure_floor(1.0);
  environment->run();
  const AclMessage* failed = client.last_with(protocols::kCaseCompleted);
  ASSERT_NE(failed, nullptr);
  EXPECT_EQ(failed->param("success"), "false");

  // Post-mortem snapshot of the failed case still carries the completions.
  AclMessage post;
  post.performative = Performative::Request;
  post.receiver = names::kCoordination;
  post.protocol = protocols::kCheckpointCase;
  post.params["case"] = "case-1";
  client.request(platform, post);
  environment->run();
  const AclMessage* snapshot = client.last_with(protocols::kCheckpointCase);
  ASSERT_NE(snapshot, nullptr);
  ASSERT_EQ(snapshot->performative, Performative::Inform) << snapshot->param("error");
  const int a7 = checkpoint_count(snapshot->content, "A7");
  const int a8 = checkpoint_count(snapshot->content, "A8");
  const int a9 = checkpoint_count(snapshot->content, "A9");
  const int fork_done = a7 + a8 + a9;
  ASSERT_GE(fork_done, 1);

  // Restore on a healthy environment: the completed branches replay from
  // the snapshot, the incomplete ones re-execute, and the case finishes.
  auto healthy = make_environment(small_options(11));
  auto& healthy_client = healthy->platform().spawn<Client>("ui");
  AclMessage restore;
  restore.performative = Performative::Request;
  restore.receiver = names::kCoordination;
  restore.protocol = protocols::kRestoreCase;
  restore.content = snapshot->content;
  restore.params["reset-replans"] = "true";
  healthy_client.request(healthy->platform(), restore);
  healthy->run();
  const AclMessage* outcome = healthy_client.last_with(protocols::kCaseCompleted);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->param("success"), "true") << outcome->param("error");
  EXPECT_GE(std::stoi(outcome->param("activities-replayed")), fork_done);
  // The incomplete FORK branches were re-executed, not skipped.
  EXPECT_GE(std::stoi(outcome->param("activities-executed")), 1);
}

TEST(Checkpoint, UnknownCaseFails) {
  auto environment = make_environment(small_options());
  auto& client = environment->platform().spawn<Client>("ui");
  AclMessage snapshot;
  snapshot.performative = Performative::Request;
  snapshot.receiver = names::kCoordination;
  snapshot.protocol = protocols::kCheckpointCase;
  snapshot.params["case"] = "case-999";
  client.request(environment->platform(), snapshot);
  environment->run();
  ASSERT_FALSE(client.replies.empty());
  EXPECT_EQ(client.replies.back().performative, Performative::Failure);
}

TEST(Checkpoint, RestoreRejectsGarbage) {
  auto environment = make_environment(small_options());
  auto& client = environment->platform().spawn<Client>("ui");
  AclMessage restore;
  restore.performative = Performative::Request;
  restore.receiver = names::kCoordination;
  restore.protocol = protocols::kRestoreCase;
  restore.content = "<not-a-checkpoint/>";
  client.request(environment->platform(), restore);
  environment->run();
  ASSERT_FALSE(client.replies.empty());
  EXPECT_EQ(client.replies.back().performative, Performative::Failure);
}

TEST(Checkpoint, DocumentCarriesProcessCaseDataAndCompletions) {
  auto environment = make_environment(small_options(55));
  auto& platform = environment->platform();
  auto& client = platform.spawn<Client>("ui");
  AclMessage enact;
  enact.performative = Performative::Request;
  enact.receiver = names::kCoordination;
  enact.protocol = protocols::kEnactCase;
  enact.content = wfl::process_to_xml_string(virolab::make_fig10_process());
  enact.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  client.request(platform, enact);
  environment->run();  // run the case to completion

  AclMessage snapshot;
  snapshot.performative = Performative::Request;
  snapshot.receiver = names::kCoordination;
  snapshot.protocol = protocols::kCheckpointCase;
  snapshot.params["case"] = "case-1";
  client.request(platform, snapshot);
  environment->run();

  const AclMessage* checkpoint = client.last_with(protocols::kCheckpointCase);
  ASSERT_NE(checkpoint, nullptr);
  ASSERT_EQ(checkpoint->performative, Performative::Inform);
  const xml::Document document = xml::parse(checkpoint->content);
  EXPECT_EQ(document.root().name(), "checkpoint");
  // All four sections are present and parse back into their models.
  EXPECT_NO_THROW(wfl::process_from_xml_string(document.root().child_text("process-xml")));
  EXPECT_NO_THROW(wfl::case_from_xml_string(document.root().child_text("case-xml")));
  const wfl::DataSet data =
      wfl::dataset_from_xml_string(document.root().child_text("dataset-xml"));
  EXPECT_FALSE(data.with_classification("Resolution File").empty());
  const xml::Element* completions = document.root().find_child("completions");
  ASSERT_NE(completions, nullptr);
  // 7 distinct end-user activities completed (loop activities with count 2).
  EXPECT_EQ(completions->find_children("completed").size(), 7u);
  int loop_counts = 0;
  for (const auto* node : completions->find_children("completed")) {
    if (node->attribute_or("count", "") == "2") ++loop_counts;
  }
  EXPECT_EQ(loop_counts, 5);  // POR, P3DR2-4, PSF ran twice
}

TEST(Checkpoint, RestoredCaseReproducesFinalData) {
  // Checkpoint taken after completion-equivalent progress restores to the
  // same goal state without dispatching everything again.
  auto environment = make_environment(small_options(21));
  auto& platform = environment->platform();
  auto& client = platform.spawn<Client>("ui");
  AclMessage enact;
  enact.performative = Performative::Request;
  enact.receiver = names::kCoordination;
  enact.protocol = protocols::kEnactCase;
  enact.content = wfl::process_to_xml_string(virolab::make_fig10_process());
  enact.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  client.request(platform, enact);
  environment->run();
  const AclMessage* first = client.last_with(protocols::kCaseCompleted);
  ASSERT_NE(first, nullptr);
  ASSERT_EQ(first->param("success"), "true");
}

// ---------------------------------------------------------------------------
// Deadline matchmaking
// ---------------------------------------------------------------------------

struct DeadlineFixture {
  DeadlineFixture() {
    environment = make_environment(small_options(33));
    // A hand-made pair of hosts: one fast, one slow, both offering POD.
    auto& grid = environment->grid();
    grid::HardwareSpec fast;
    fast.speed = 100.0;
    grid.add_node("fast-node", "fast", "domain1", fast);
    grid::HardwareSpec slow;
    slow.speed = 0.01;
    grid.add_node("slow-node", "slow", "domain1", slow);
    grid.add_container("fast-ac", "fast-node").host_service("POD");
    grid.add_container("slow-ac", "slow-node").host_service("POD");
  }
  std::unique_ptr<Environment> environment;
};

TEST(DeadlineMatchmaking, TightDeadlinePrefersFeasibleHosts) {
  DeadlineFixture fixture;
  auto& matchmaking = fixture.environment->matchmaking();
  // POD costs 40 work units: the slow node needs 4000 s, the fast one 0.4 s.
  const auto ranked = matchmaking.rank_deadline("POD", {}, /*work=*/40.0,
                                                /*deadline_s=*/10.0, /*now=*/0.0);
  ASSERT_FALSE(ranked.empty());
  EXPECT_EQ(ranked.front(), "fast-ac");
  // The infeasible slow host still appears, but last (best-effort tail).
  EXPECT_EQ(ranked.back(), "slow-ac");
}

TEST(DeadlineMatchmaking, ImpossibleDeadlineFallsBackToFastest) {
  DeadlineFixture fixture;
  auto& matchmaking = fixture.environment->matchmaking();
  const auto ranked =
      matchmaking.rank_deadline("POD", {}, /*work=*/40.0, /*deadline_s=*/1e-9, /*now=*/0.0);
  ASSERT_FALSE(ranked.empty());
  // Nothing is feasible; candidates are ordered by expected duration.
  EXPECT_EQ(ranked.front(), "fast-ac");
}

TEST(DeadlineMatchmaking, HistoryOverridesOptimisticEstimate) {
  DeadlineFixture fixture;
  // Report a history of very slow executions on the fast container.
  auto& platform = fixture.environment->platform();
  auto& client = platform.spawn<Client>("ui2");
  for (int i = 0; i < 3; ++i) {
    AclMessage report;
    report.performative = Performative::Inform;
    report.receiver = names::kBrokerage;
    report.protocol = protocols::kReportPerformance;
    report.params["container"] = "fast-ac";
    report.params["outcome"] = "success";
    report.params["duration"] = "5000";
    client.request(platform, report);
  }
  fixture.environment->run();
  const double estimate = fixture.environment->matchmaking().expected_duration(
      *fixture.environment->grid().find_container("fast-ac"), 40.0, 0.0);
  EXPECT_GE(estimate, 5000.0);  // history dominates the model estimate
}

TEST(DeadlineMatchmaking, WireProtocolCarriesWorkAndDeadline) {
  DeadlineFixture fixture;
  auto& client = fixture.environment->platform().spawn<Client>("ui3");
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = names::kMatchmaking;
  query.protocol = protocols::kFindContainer;
  query.params["service"] = "POD";
  query.params["strategy"] = "deadline";
  query.params["work"] = "40";
  query.params["deadline"] = "10";
  client.request(fixture.environment->platform(), query);
  fixture.environment->run();
  ASSERT_FALSE(client.replies.empty());
  EXPECT_EQ(client.replies.back().param("container"), "fast-ac");
}

// ---------------------------------------------------------------------------
// Spot-market cost accounting
// ---------------------------------------------------------------------------

TEST(CostAccounting, CheapestStrategyPrefersLowPrice) {
  auto environment = make_environment(small_options(44));
  auto& grid = environment->grid();
  grid::HardwareSpec hw;
  grid.add_node("n-exp", "expensive", "domain1", hw);
  grid.add_node("n-chp", "cheap", "domain1", hw);
  auto& expensive = grid.add_container("exp-ac", "n-exp");
  expensive.host_service("POD");
  expensive.set_price_factor(5.0);
  auto& cheap = grid.add_container("chp-ac", "n-chp");
  cheap.host_service("POD");
  cheap.set_price_factor(0.1);

  const auto ranked =
      environment->matchmaking().rank("POD", {}, MatchStrategy::Cheapest);
  ASSERT_GE(ranked.size(), 2u);
  // The cheap hand-made container outranks the expensive one.
  std::size_t cheap_rank = ranked.size();
  std::size_t expensive_rank = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i] == "chp-ac") cheap_rank = i;
    if (ranked[i] == "exp-ac") expensive_rank = i;
  }
  EXPECT_LT(cheap_rank, expensive_rank);
}

TEST(CostAccounting, EnactmentReportsTotalCost) {
  auto environment = make_environment(small_options(45));
  auto& ui = environment->platform().spawn<UserInterfaceAgent>("ui");
  ui.submit_process(virolab::make_fig10_process(), virolab::make_case_description());
  environment->run();
  ASSERT_TRUE(ui.finished());
  ASSERT_TRUE(ui.outcome().success) << ui.outcome().error;
  // 12 executions with per-service costs 3..10 and price factors 0.5..2:
  // the total is strictly positive and bounded by worst-case pricing.
  EXPECT_GT(ui.outcome().total_cost, 0.0);
  EXPECT_LT(ui.outcome().total_cost, 12 * 10.0 * 2.0);
}

// ---------------------------------------------------------------------------
// UserInterfaceAgent
// ---------------------------------------------------------------------------

TEST(UserInterface, SubmitCasePlansAndEnacts) {
  auto environment = make_environment(small_options(46));
  auto& ui = environment->platform().spawn<UserInterfaceAgent>("ui");
  int plan_callbacks = 0;
  int outcome_callbacks = 0;
  ui.on_plan([&](const wfl::ProcessDescription& process) {
    ++plan_callbacks;
    EXPECT_GT(process.end_user_activity_count(), 0u);
  });
  ui.on_outcome([&](const TaskOutcome& outcome) {
    ++outcome_callbacks;
    EXPECT_TRUE(outcome.success) << outcome.error;
  });
  ui.submit_case(virolab::make_case_description(), /*seed=*/7);
  environment->run();
  EXPECT_EQ(plan_callbacks, 1);
  EXPECT_EQ(outcome_callbacks, 1);
  ASSERT_TRUE(ui.finished());
  EXPECT_TRUE(ui.outcome().success);
  EXPECT_DOUBLE_EQ(ui.outcome().goal_satisfaction, 1.0);
  ASSERT_TRUE(ui.plan().has_value());
  // The final data holds a resolution file.
  EXPECT_FALSE(ui.outcome().final_data.with_classification("Resolution File").empty());
}

TEST(UserInterface, SubmitProcessSkipsPlanning) {
  auto environment = make_environment(small_options(47));
  auto& ui = environment->platform().spawn<UserInterfaceAgent>("ui");
  ui.submit_process(virolab::make_fig10_process(), virolab::make_case_description());
  environment->run();
  ASSERT_TRUE(ui.finished());
  EXPECT_TRUE(ui.outcome().success) << ui.outcome().error;
  EXPECT_EQ(ui.outcome().activities_executed, 12);
  EXPECT_EQ(environment->planning().plans_produced(), 0u);
}

// ---------------------------------------------------------------------------
// Hierarchical information services
// ---------------------------------------------------------------------------

TEST(HierarchicalInformation, LocalMissDelegatesToParent) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  auto& root = platform.spawn<InformationService>("is-root");
  auto& leaf = platform.spawn<InformationService>("is-leaf", "is-root");
  auto& client = platform.spawn<Client>("ui");

  // Register a provider only at the root.
  AclMessage registration;
  registration.performative = Performative::Request;
  registration.receiver = "is-root";
  registration.protocol = protocols::kRegister;
  registration.params["type"] = "planning";
  registration.params["provider"] = "ps-global";
  client.request(platform, registration);
  sim.run();

  // Query the leaf: it misses locally, asks the root, and relays.
  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = "is-leaf";
  query.protocol = protocols::kQueryService;
  query.params["type"] = "planning";
  client.request(platform, query);
  sim.run();

  const AclMessage* reply = client.last_with(protocols::kQueryService);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->param("providers"), "ps-global");
  EXPECT_EQ(reply->param("resolved-by"), "is-root");
  EXPECT_EQ(leaf.delegated_queries(), 1u);
  EXPECT_EQ(root.parent(), "");
}

TEST(HierarchicalInformation, LocalHitDoesNotDelegate) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  platform.spawn<InformationService>("is-root");
  auto& leaf = platform.spawn<InformationService>("is-leaf", "is-root");
  auto& client = platform.spawn<Client>("ui");

  AclMessage registration;
  registration.performative = Performative::Request;
  registration.receiver = "is-leaf";
  registration.protocol = protocols::kRegister;
  registration.params["type"] = "planning";
  registration.params["provider"] = "ps-local";
  client.request(platform, registration);
  sim.run();

  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = "is-leaf";
  query.protocol = protocols::kQueryService;
  query.params["type"] = "planning";
  client.request(platform, query);
  sim.run();

  const AclMessage* reply = client.last_with(protocols::kQueryService);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->param("providers"), "ps-local");
  EXPECT_FALSE(reply->has_param("resolved-by"));
  EXPECT_EQ(leaf.delegated_queries(), 0u);
}

TEST(HierarchicalInformation, MissEverywhereYieldsEmptyAnswer) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  platform.spawn<InformationService>("is-root");
  platform.spawn<InformationService>("is-leaf", "is-root");
  auto& client = platform.spawn<Client>("ui");

  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = "is-leaf";
  query.protocol = protocols::kQueryService;
  query.params["type"] = "time-travel";
  client.request(platform, query);
  sim.run();

  const AclMessage* reply = client.last_with(protocols::kQueryService);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->param("providers"), "");
}

TEST(HierarchicalInformation, ThreeLevelChain) {
  grid::Simulation sim;
  agent::AgentPlatform platform(sim);
  platform.spawn<InformationService>("is-root");
  platform.spawn<InformationService>("is-mid", "is-root");
  platform.spawn<InformationService>("is-leaf", "is-mid");
  auto& client = platform.spawn<Client>("ui");

  AclMessage registration;
  registration.performative = Performative::Request;
  registration.receiver = "is-root";
  registration.protocol = protocols::kRegister;
  registration.params["type"] = "ontology";
  registration.params["provider"] = "os-global";
  client.request(platform, registration);
  sim.run();

  AclMessage query;
  query.performative = Performative::QueryRef;
  query.receiver = "is-leaf";
  query.protocol = protocols::kQueryService;
  query.params["type"] = "ontology";
  client.request(platform, query);
  sim.run();

  const AclMessage* reply = client.last_with(protocols::kQueryService);
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->param("providers"), "os-global");
}

}  // namespace
}  // namespace ig::svc
