file(REMOVE_RECURSE
  "CMakeFiles/igrid_cli.dir/igrid_cli.cpp.o"
  "CMakeFiles/igrid_cli.dir/igrid_cli.cpp.o.d"
  "igrid_cli"
  "igrid_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/igrid_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
