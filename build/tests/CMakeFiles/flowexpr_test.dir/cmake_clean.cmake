file(REMOVE_RECURSE
  "CMakeFiles/flowexpr_test.dir/flowexpr_test.cpp.o"
  "CMakeFiles/flowexpr_test.dir/flowexpr_test.cpp.o.d"
  "flowexpr_test"
  "flowexpr_test.pdb"
  "flowexpr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowexpr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
