file(REMOVE_RECURSE
  "CMakeFiles/simulation_service_test.dir/simulation_service_test.cpp.o"
  "CMakeFiles/simulation_service_test.dir/simulation_service_test.cpp.o.d"
  "simulation_service_test"
  "simulation_service_test.pdb"
  "simulation_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulation_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
