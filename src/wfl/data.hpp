// Data items and their metainformation properties.
//
// Activities consume and produce *data* whose relevant attributes —
// Classification, Size, Location, Format, Value, ... (the Data frame of
// Figure 12) — drive condition evaluation, matchmaking, and planning. A
// DataSpec is the in-memory form of one Data-frame instance.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "meta/value.hpp"

namespace ig::wfl {

/// Property names used throughout the paper's examples.
namespace props {
inline constexpr const char* kClassification = "Classification";
inline constexpr const char* kSize = "Size";
inline constexpr const char* kLocation = "Location";
inline constexpr const char* kFormat = "Format";
inline constexpr const char* kValue = "Value";
inline constexpr const char* kType = "Type";
inline constexpr const char* kCreator = "Creator";
inline constexpr const char* kOwner = "Owner";
}  // namespace props

/// A data item: a name plus a property map.
class DataSpec {
 public:
  DataSpec() = default;
  explicit DataSpec(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  void set(std::string_view property, meta::Value value);
  /// Property value; none-typed when unset.
  const meta::Value& get(std::string_view property) const noexcept;
  bool has(std::string_view property) const noexcept;

  /// Shorthand for the ubiquitous Classification property.
  std::string classification() const;
  DataSpec& with_classification(std::string_view value);
  DataSpec& with(std::string_view property, meta::Value value);

  const std::map<std::string, meta::Value, std::less<>>& properties() const noexcept {
    return properties_;
  }

  /// "name{Prop=val, ...}" rendering for traces and tests.
  std::string to_display_string() const;

  bool operator==(const DataSpec& other) const noexcept {
    return name_ == other.name_ && properties_ == other.properties_;
  }

 private:
  std::string name_;
  std::map<std::string, meta::Value, std::less<>> properties_;
};

/// A set of data items keyed by name (a world-state fragment).
class DataSet {
 public:
  DataSet() = default;
  explicit DataSet(std::vector<DataSpec> items);

  /// Adds or replaces by name.
  void put(DataSpec item);
  const DataSpec* find(std::string_view name) const noexcept;
  bool contains(std::string_view name) const noexcept { return find(name) != nullptr; }
  bool remove(std::string_view name);

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }

  const std::vector<DataSpec>& items() const noexcept { return items_; }
  std::vector<std::string> names() const;

  /// All items whose Classification equals `classification`.
  std::vector<const DataSpec*> with_classification(std::string_view classification) const;

  bool operator==(const DataSet& other) const noexcept { return items_ == other.items_; }

 private:
  std::vector<DataSpec> items_;
};

}  // namespace ig::wfl
