# Empty compiler generated dependencies file for environment_test.
# This may be replaced when dependencies are built.
