#include <gtest/gtest.h>

#include "wfl/data.hpp"

namespace ig::wfl {
namespace {

TEST(DataSpec, PropertiesSetGet) {
  DataSpec data("D1");
  data.set("Classification", meta::Value("POD-Parameter"));
  data.set("Size", meta::Value(0.003));
  EXPECT_EQ(data.name(), "D1");
  EXPECT_EQ(data.get("Classification").as_string(), "POD-Parameter");
  EXPECT_TRUE(data.has("Size"));
  EXPECT_FALSE(data.has("Missing"));
  EXPECT_TRUE(data.get("Missing").is_none());
}

TEST(DataSpec, ClassificationShorthand) {
  DataSpec data("D7");
  data.with_classification("2D Image");
  EXPECT_EQ(data.classification(), "2D Image");
  DataSpec no_class("x");
  EXPECT_EQ(no_class.classification(), "");
}

TEST(DataSpec, FluentChaining) {
  DataSpec data = DataSpec("D8").with_classification("Orientation File")
                      .with("Size", meta::Value(2.0))
                      .with("Creator", meta::Value("POD"));
  EXPECT_EQ(data.properties().size(), 3u);
}

TEST(DataSpec, OverwriteProperty) {
  DataSpec data("D8");
  data.set("Creator", meta::Value("POD"));
  data.set("Creator", meta::Value("POR"));
  EXPECT_EQ(data.get("Creator").as_string(), "POR");
}

TEST(DataSpec, DisplayString) {
  DataSpec data("D12");
  data.with_classification("Resolution File").with("Value", meta::Value(7.5));
  const std::string display = data.to_display_string();
  EXPECT_NE(display.find("D12"), std::string::npos);
  EXPECT_NE(display.find("Resolution File"), std::string::npos);
  EXPECT_NE(display.find("7.5"), std::string::npos);
}

TEST(DataSpec, Equality) {
  DataSpec a("x");
  a.with("k", meta::Value(1.0));
  DataSpec b("x");
  b.with("k", meta::Value(1.0));
  EXPECT_EQ(a, b);
  b.with("k", meta::Value(2.0));
  EXPECT_FALSE(a == b);
}

TEST(DataSet, PutReplacesByName) {
  DataSet set;
  set.put(DataSpec("D8").with_classification("Orientation File"));
  set.put(DataSpec("D8").with_classification("Refined"));
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.find("D8")->classification(), "Refined");
}

TEST(DataSet, FindAndContains) {
  DataSet set;
  set.put(DataSpec("D1"));
  EXPECT_TRUE(set.contains("D1"));
  EXPECT_FALSE(set.contains("D2"));
  EXPECT_EQ(set.find("D2"), nullptr);
}

TEST(DataSet, Remove) {
  DataSet set;
  set.put(DataSpec("D1"));
  EXPECT_TRUE(set.remove("D1"));
  EXPECT_FALSE(set.remove("D1"));
  EXPECT_TRUE(set.empty());
}

TEST(DataSet, NamesPreserveInsertionOrder) {
  DataSet set;
  set.put(DataSpec("D3"));
  set.put(DataSpec("D1"));
  set.put(DataSpec("D2"));
  const auto names = set.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "D3");
  EXPECT_EQ(names[1], "D1");
  EXPECT_EQ(names[2], "D2");
}

TEST(DataSet, WithClassification) {
  DataSet set;
  set.put(DataSpec("m1").with_classification("3D Model"));
  set.put(DataSpec("m2").with_classification("3D Model"));
  set.put(DataSpec("img").with_classification("2D Image"));
  EXPECT_EQ(set.with_classification("3D Model").size(), 2u);
  EXPECT_EQ(set.with_classification("2D Image").size(), 1u);
  EXPECT_TRUE(set.with_classification("Nothing").empty());
}

TEST(DataSet, ConstructFromVector) {
  DataSet set({DataSpec("a"), DataSpec("b"), DataSpec("a")});
  EXPECT_EQ(set.size(), 2u);  // duplicate name collapses
}

}  // namespace
}  // namespace ig::wfl
