// Slot values for the frame-based metainformation model.
//
// Figure 13 of the paper shows slots holding strings ("3DSD"), numbers
// (sizes), and sets ({D1, D2, ..., D7}); Value covers exactly those shapes
// plus booleans, with a none state for unfilled optional slots.
#pragma once

#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace ig::meta {

enum class ValueType { None, String, Number, Boolean, List };

std::string_view to_string(ValueType type) noexcept;

/// A dynamically-typed slot value: none | string | number | bool | list.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(const char* text) : data_(std::string(text)) {}
  Value(std::string text) : data_(std::move(text)) {}
  Value(double number) : data_(number) {}
  Value(int number) : data_(static_cast<double>(number)) {}
  Value(bool flag) : data_(flag) {}
  Value(std::vector<Value> items) : data_(std::move(items)) {}

  /// Builds a list of strings; convenience for ID-set slots.
  static Value list_of(const std::vector<std::string>& items);

  ValueType type() const noexcept;
  bool is_none() const noexcept { return type() == ValueType::None; }

  /// Typed accessors; throw std::bad_variant_access on type mismatch.
  const std::string& as_string() const { return std::get<std::string>(data_); }
  double as_number() const { return std::get<double>(data_); }
  bool as_boolean() const { return std::get<bool>(data_); }
  const std::vector<Value>& as_list() const { return std::get<std::vector<Value>>(data_); }
  std::vector<Value>& as_list() { return std::get<std::vector<Value>>(data_); }

  /// List of the string items in a list value (non-strings are skipped).
  std::vector<std::string> as_string_list() const;

  /// Human-readable rendering: strings verbatim, lists as "{a, b, c}".
  std::string to_display_string() const;

  bool operator==(const Value& other) const noexcept;
  bool operator!=(const Value& other) const noexcept { return !(*this == other); }

 private:
  std::variant<std::monostate, std::string, double, bool, std::vector<Value>> data_;
};

}  // namespace ig::meta
