# Empty dependencies file for simulation_service_test.
# This may be replaced when dependencies are built.
