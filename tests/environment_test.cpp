// Bootstrap invariants of the one-call environment (services/environment).
#include <gtest/gtest.h>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"

namespace ig::svc {
namespace {

TEST(Environment, AllCoreServicesSpawned) {
  auto environment = make_environment();
  auto& platform = environment->platform();
  for (const char* name :
       {names::kInformation, names::kBrokerage, names::kMatchmaking, names::kMonitoring,
        names::kOntology, names::kAuthentication, names::kPersistentStorage,
        names::kScheduling, names::kSimulation, names::kPlanning, names::kCoordination}) {
    EXPECT_TRUE(platform.has_agent(name)) << name;
  }
}

TEST(Environment, EveryContainerHasAnAgent) {
  auto environment = make_environment();
  for (const auto& container : environment->grid().containers()) {
    EXPECT_TRUE(environment->platform().has_agent(container->id())) << container->id();
  }
}

TEST(Environment, DefaultCatalogueIsVirolab) {
  auto environment = make_environment();
  EXPECT_EQ(environment->catalogue().names(), virolab::make_catalogue().names());
}

TEST(Environment, CustomCatalogueRespected) {
  EnvironmentOptions options;
  wfl::ServiceType solo("Solo");
  solo.set_outputs({"X"});
  solo.set_output_condition(wfl::Condition::parse("X.Classification = \"Thing\""));
  options.catalogue.add(std::move(solo));
  options.topology.domains = 1;
  options.topology.nodes_per_domain = 1;
  auto environment = make_environment(options);
  EXPECT_EQ(environment->catalogue().size(), 1u);
  EXPECT_TRUE(environment->catalogue().contains("Solo"));
  // The topology hosts the custom service somewhere.
  EXPECT_FALSE(environment->grid().containers_advertising("Solo").empty());
}

TEST(Environment, EveryServiceHasAtLeastOneHost) {
  auto environment = make_environment();
  for (const auto& name : environment->catalogue().names()) {
    EXPECT_FALSE(environment->grid().containers_advertising(name).empty()) << name;
  }
}

TEST(Environment, RegistrationsFlushedAtConstruction) {
  auto environment = make_environment();
  EXPECT_GT(environment->information().registration_count(), 10u);
  for (const auto& name : environment->catalogue().names()) {
    EXPECT_FALSE(environment->brokerage().providers_of(name).empty()) << name;
  }
}

TEST(Environment, OntologiesPreloaded) {
  auto environment = make_environment();
  ASSERT_NE(environment->ontology().find("grid-standard"), nullptr);
  ASSERT_NE(environment->ontology().find("3DSD-instances"), nullptr);
  EXPECT_TRUE(environment->ontology().find("grid-standard")->is_shell());
  EXPECT_FALSE(environment->ontology().find("3DSD-instances")->is_shell());
}

TEST(Environment, TopologyDeterministicPerSeed) {
  EnvironmentOptions options;
  options.seed = 31;
  auto a = make_environment(options);
  auto b = make_environment(options);
  ASSERT_EQ(a->grid().nodes().size(), b->grid().nodes().size());
  for (std::size_t i = 0; i < a->grid().nodes().size(); ++i) {
    EXPECT_DOUBLE_EQ(a->grid().nodes()[i]->hardware().speed,
                     b->grid().nodes()[i]->hardware().speed);
    EXPECT_EQ(a->grid().nodes()[i]->domain(), b->grid().nodes()[i]->domain());
  }
  for (std::size_t i = 0; i < a->grid().containers().size(); ++i) {
    EXPECT_EQ(a->grid().containers()[i]->hosted_services(),
              b->grid().containers()[i]->hosted_services());
    EXPECT_DOUBLE_EQ(a->grid().containers()[i]->price_factor(),
                     b->grid().containers()[i]->price_factor());
  }
}

TEST(Environment, DifferentSeedsDifferentTopology) {
  EnvironmentOptions a_options;
  a_options.seed = 1;
  EnvironmentOptions b_options;
  b_options.seed = 2;
  auto a = make_environment(a_options);
  auto b = make_environment(b_options);
  bool any_difference = false;
  for (std::size_t i = 0; i < a->grid().nodes().size(); ++i) {
    if (a->grid().nodes()[i]->hardware().speed != b->grid().nodes()[i]->hardware().speed)
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Environment, TracingOffByDefaultOnWhenRequested) {
  auto plain = make_environment();
  EXPECT_TRUE(plain->platform().trace().empty());

  EnvironmentOptions options;
  options.tracing = true;
  auto traced = make_environment(options);
  // Bootstrap registrations are themselves traced.
  EXPECT_FALSE(traced->platform().trace().empty());
}

TEST(Environment, TopologyParamsShapeTheGrid) {
  EnvironmentOptions options;
  options.topology.domains = 4;
  options.topology.nodes_per_domain = 2;
  options.topology.containers_per_node = 2;
  auto environment = make_environment(options);
  EXPECT_EQ(environment->grid().nodes().size(), 8u);
  EXPECT_EQ(environment->grid().containers().size(), 16u);
  EXPECT_EQ(environment->grid().domains().size(), 4u);
}

TEST(Environment, RunDrainsToQuiescence) {
  auto environment = make_environment();
  environment->run();
  EXPECT_EQ(environment->sim().pending_events(), 0u);
}

}  // namespace
}  // namespace ig::svc
