#include "engine/engine.hpp"

#include <algorithm>
#include <cstring>

#include "services/protocol.hpp"
#include "store/codec.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "wfl/xml_io.hpp"

namespace ig::engine {

using agent::AclMessage;
using agent::Performative;

std::string_view to_string(CaseState state) noexcept {
  switch (state) {
    case CaseState::Queued: return "Queued";
    case CaseState::Running: return "Running";
    case CaseState::Completed: return "Completed";
    case CaseState::Failed: return "Failed";
    case CaseState::Cancelled: return "Cancelled";
    case CaseState::Rejected: return "Rejected";
  }
  return "?";
}

namespace {

/// The engine's in-platform proxy: the agent that submits enact / restore /
/// checkpoint requests on a shard and collects the replies. Only the
/// shard's worker thread ever touches it (it runs the simulation), so it
/// needs no locking.
class EngineClient final : public agent::Agent {
 public:
  using Agent::Agent;

  void handle_message(const AclMessage& message) override {
    replies_[message.conversation_id] = message;
  }

  void post(AclMessage message) { send(std::move(message)); }

  std::optional<AclMessage> take(const std::string& conversation_id) {
    auto it = replies_.find(conversation_id);
    if (it == replies_.end()) return std::nullopt;
    AclMessage message = std::move(it->second);
    replies_.erase(it);
    return message;
  }

 private:
  std::map<std::string, AclMessage> replies_;
};

// -- journal event encoding ----------------------------------------------------
//
// One WAL event per lifecycle transition on stream "engine". Retry and
// Terminal carry the case's *resulting* state (absolute, not a delta), so
// replaying an event twice — which happens when it is both inside a
// snapshot blob and still in the WAL tail — converges instead of drifting.
constexpr std::uint8_t kEventAdmit = 1;
constexpr std::uint8_t kEventRetry = 2;
constexpr std::uint8_t kEventCancel = 3;
constexpr std::uint8_t kEventTerminal = 4;
constexpr std::uint32_t kStateBlobVersion = 1;

std::uint64_t double_bits(double value) noexcept {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double bits_to_double(std::uint64_t bits) noexcept {
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void write_outcome(store::Writer& w, const CaseOutcome& outcome) {
  w.u8(static_cast<std::uint8_t>(outcome.state));
  w.str(outcome.error);
  w.u64(double_bits(outcome.makespan));
  w.u32(static_cast<std::uint32_t>(outcome.activities_executed));
  w.u32(static_cast<std::uint32_t>(outcome.activities_replayed));
  w.u32(static_cast<std::uint32_t>(outcome.dispatch_failures));
  w.u32(static_cast<std::uint32_t>(outcome.replans));
  w.u32(static_cast<std::uint32_t>(outcome.engine_retries));
  w.u64(double_bits(outcome.goal_satisfaction));
  w.u64(double_bits(outcome.total_cost));
  w.u64(double_bits(outcome.latency_seconds));
  w.u64(outcome.shard);
  w.u64(outcome.completion_index);
}

CaseOutcome read_outcome(store::Reader& r) {
  CaseOutcome outcome;
  outcome.state = static_cast<CaseState>(r.u8());
  outcome.error = std::string(r.str());
  outcome.makespan = bits_to_double(r.u64());
  outcome.activities_executed = static_cast<int>(r.u32());
  outcome.activities_replayed = static_cast<int>(r.u32());
  outcome.dispatch_failures = static_cast<int>(r.u32());
  outcome.replans = static_cast<int>(r.u32());
  outcome.engine_retries = static_cast<int>(r.u32());
  outcome.goal_satisfaction = bits_to_double(r.u64());
  outcome.total_cost = bits_to_double(r.u64());
  outcome.latency_seconds = bits_to_double(r.u64());
  outcome.shard = static_cast<std::size_t>(r.u64());
  outcome.completion_index = static_cast<std::size_t>(r.u64());
  return outcome;
}

}  // namespace

struct EnactmentEngine::AttemptResult {
  enum class Kind { Success, Failure, Cancelled } kind = Kind::Failure;
  AclMessage reply;             ///< the case-completed (or failure) reply
  std::string checkpoint_xml;  ///< snapshot captured after a failure
};

/// One shard: a private environment, its proxy agent, and the state machine
/// that a chain of pump jobs advances one simulation slice at a time. The
/// attempt state is touched only by the shard's single in-flight pump job
/// (the job chain serializes through the job system's deques), so it needs
/// no lock even though successive slices may run on different workers.
/// Stats and `pump_scheduled` are guarded by the engine mutex.
struct EnactmentEngine::Shard {
  std::size_t index = 0;
  std::unique_ptr<svc::Environment> environment;
  EngineClient* client = nullptr;

  // -- attempt state machine, owned by the in-flight pump job --
  /// Idle: no case. Drain: flushing calendar leftovers of an abandoned
  /// case. Enact: slicing the simulation until the completion reply.
  /// Checkpoint: snapshotting a failed enactment for a cross-shard retry.
  enum class Phase { Idle, Drain, Enact, Checkpoint };
  Phase phase = Phase::Idle;
  CaseRecord snapshot;        ///< inputs of the current attempt
  std::string conversation;   ///< engine/<case>/<retry>
  std::size_t slices = 0;     ///< slices consumed in the current phase
  AttemptResult attempt;      ///< result under construction

  // -- stats, under the engine mutex --
  bool pump_scheduled = false;  ///< a pump job for this shard is in flight
  std::size_t cases_run = 0;
  std::size_t cases_completed = 0;
  std::size_t cases_failed = 0;
  double busy_seconds = 0.0;
  // Counters folded in from retired environments: durable mode rebuilds
  // the stack per attempt, and each rebuild would otherwise zero the
  // platform/tracker counters metrics() reads. metrics() reports
  // accumulator + live environment.
  std::size_t acc_handler_failures = 0;
  std::size_t acc_faults_injected = 0;
  std::size_t acc_request_retries = 0;
  std::size_t acc_dead_letters = 0;
  std::size_t acc_containers_recovered = 0;
  std::size_t acc_trace_dropped = 0;
};

EnactmentEngine::EnactmentEngine(EngineConfig config) : config_(std::move(config)) {
  config_.shards = std::max<std::size_t>(1, config_.shards);
  config_.events_per_slice = std::max<std::size_t>(1, config_.events_per_slice);
  started_at_ = std::chrono::steady_clock::now();
  // Ring capacity well above any bench's case count, so registry-derived
  // percentiles stay exact (see obs/metrics.hpp).
  latency_hist_ = &registry_.histogram("engine_case_latency_seconds",
                                       obs::default_latency_buckets(), {}, 65536);

  // Durable mode: open the journal and rebuild the case table before any
  // shard exists, so recovered cases are queued by the time pumps start.
  if (!config_.storage.data_dir.empty()) {
    // Several shards journaling through one store turn sequential per-case
    // commits into one barrier per window instead of one fsync each; a
    // single shard gains nothing and would only add latency.
    if (config_.storage.group_window_us == 0 && config_.shards > 1)
      config_.storage.group_window_us = 200;
    recover_from_journal();
  }

  // Build every shard stack on the caller's thread (deterministic seeds,
  // no construction races), then start the workers.
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    const double floor =
        i < config_.shard_failure_floor.size() ? config_.shard_failure_floor[i] : 0.0;
    svc::EnvironmentOptions options = config_.environment;
    if (options.chaos.enabled()) {
      // Same chaos rules on every shard, decorrelated fault streams: each
      // shard's draw sequence comes from (template chaos seed, shard index).
      options.chaos.seed = util::derive_stream(options.chaos.seed, 0xC4A05ULL, i);
    }
    shard->environment = svc::make_shard_stack(options, config_.seed, i, floor);
    shard->client = &shard->environment->platform().spawn<EngineClient>("engine-client");
    if (config_.shard_setup) config_.shard_setup(*shard->environment, i);
    shards_.push_back(std::move(shard));
  }
  // One shared work-stealing pool under every shard's pump stream. The
  // default (workers = shards) keeps the old thread-per-shard concurrency;
  // fewer workers time-slice the streams, and either way an idle worker
  // steals a busy shard's next slice instead of sleeping.
  const std::size_t workers = config_.workers == 0 ? config_.shards : config_.workers;
  jobs_ = std::make_unique<sched::JobSystem>(workers);
  // Cold-start resume: cases the journal recovered into the queues have no
  // submit() call coming to kick the pumps — kick them here.
  if (queued_ > 0) {
    for (Shard* shard : claim_idle_pumps_locked()) post_pump(*shard);
  }
}

EnactmentEngine::~EnactmentEngine() { shutdown(); }

void EnactmentEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  case_terminal_.notify_all();
  // Drain the in-flight pump jobs: each sees stopping_, finalizes its
  // running attempt as Failed ("engine shutdown"), and does not repost.
  // Queued cases stay Queued. The counters survive for metrics(). The job
  // system itself is NOT torn down here: submit() is thread-safe and may
  // race this drain, posting a pump just after wait_idle() returns — that
  // post needs a live JobSystem to land on (the pump then sees stopping_
  // and no-ops). jobs_ dies with the engine, whose destructor drains again.
  jobs_->wait_idle();
  // Abandoned attempts journal no Terminal event (the whole point: a
  // restart resumes them), but everything journaled so far becomes durable
  // on this clean path.
  if (journal_) journal_commit();
}

CaseId EnactmentEngine::submit(const wfl::ProcessDescription& process,
                               const wfl::CaseDescription& case_description,
                               const std::string& tenant) {
  return submit_xml(wfl::process_to_xml_string(process),
                    wfl::case_to_xml_string(case_description), tenant);
}

CaseId EnactmentEngine::submit_xml(std::string process_xml, std::string case_xml,
                                   const std::string& tenant) {
  std::vector<Shard*> to_pump;
  CaseId id = kInvalidCase;
  bool durable = false;
  bool journal_failed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queued_ >= config_.queue_capacity) {
      ++rejected_total_;
      return kInvalidCase;
    }
    if (journal_ && degraded_) {
      // Graceful degradation: an engine whose journal failed cannot promise
      // durability, so it stops accepting durable work instead of lying.
      ++rejected_total_;
      IG_LOG_WARN("engine") << "rejecting submission: journal degraded ("
                            << degraded_reason_ << ")";
      return kInvalidCase;
    }
    id = next_case_id_++;
    CaseRecord& record = records_[id];
    record.id = id;
    record.tenant = tenant.empty() ? "default" : tenant;
    record.process_xml = std::move(process_xml);
    record.case_xml = std::move(case_xml);
    record.submitted_at = std::chrono::steady_clock::now();
    ++submitted_total_;
    durable = journal_ != nullptr;
    if (durable) {
      std::string payload;
      store::Writer w(payload);
      w.u8(kEventAdmit);
      w.u64(record.id);
      w.str(record.tenant);
      w.str(record.process_xml);
      w.str(record.case_xml);
      // The record deliberately stays out of the tenant queues here: a
      // durable submission is admitted (and its id acked) only after the
      // admit event is on disk, so an acked id can never be lost to a
      // crash — the invariant the crash-point matrix test holds us to.
      journal_failed = !journal_append_locked(payload);
    } else {
      admit_locked(record);
      to_pump = claim_idle_pumps_locked();
    }
  }
  if (durable) {
    // The msync runs outside the engine mutex (group commit absorbs
    // concurrent submits).
    if (!journal_failed) journal_failed = !journal_commit();
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(id);
    if (journal_failed) {
      // Never acked, so it must leave no trace: the caller sees a rejection
      // with a reason (degraded_), not a case that silently evaporates.
      if (it != records_.end()) records_.erase(it);
      --submitted_total_;
      ++rejected_total_;
      if (next_case_id_ == id + 1) next_case_id_ = id;
      id = kInvalidCase;
    } else if (it != records_.end() && it->second.state == CaseState::Queued &&
               !it->second.cancel_requested) {
      // (A cancel that raced the commit already finalized the record.)
      admit_locked(it->second);
      to_pump = claim_idle_pumps_locked();
    }
  }
  // Posting outside the engine mutex: a pump job can start (and take the
  // mutex) before we would have released it. A shutdown() racing these
  // posts is safe — jobs_ stays alive until the engine is destroyed, and
  // the pumps themselves observe stopping_ and no-op.
  for (Shard* shard : to_pump) post_pump(*shard);
  return id;
}

std::vector<EnactmentEngine::Shard*> EnactmentEngine::claim_idle_pumps_locked() {
  std::vector<Shard*> claimed;
  for (auto& shard : shards_) {
    if (shard->pump_scheduled) continue;
    shard->pump_scheduled = true;
    claimed.push_back(shard.get());
  }
  return claimed;
}

void EnactmentEngine::post_pump(Shard& shard) {
  // Affinity pins the stream to one home worker (cache-warm environment);
  // the job stays stealable when that worker is mid-slice on another shard.
  jobs_->post([this, &shard] { pump(shard); }, shard.index);
}

void EnactmentEngine::admit_locked(CaseRecord& record) {
  record.state = CaseState::Queued;
  auto& queue = tenant_queues_[record.tenant];
  if (queue.empty() &&
      std::find(tenant_order_.begin(), tenant_order_.end(), record.tenant) ==
          tenant_order_.end()) {
    tenant_order_.push_back(record.tenant);
  }
  queue.push_back(record.id);
  ++queued_;
}

std::optional<CaseId> EnactmentEngine::pop_for_shard_locked(std::size_t shard_index) {
  const std::size_t tenants = tenant_order_.size();
  for (std::size_t k = 0; k < tenants; ++k) {
    const std::size_t slot = (rr_cursor_ + k) % tenants;
    const std::string tenant = tenant_order_[slot];
    auto& queue = tenant_queues_[tenant];
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      const CaseRecord& record = records_.at(*it);
      if (record.excluded_shards.count(shard_index) > 0) continue;
      const CaseId id = *it;
      queue.erase(it);
      --queued_;
      if (queue.empty()) {
        tenant_queues_.erase(tenant);
        tenant_order_.erase(tenant_order_.begin() + static_cast<std::ptrdiff_t>(slot));
        rr_cursor_ = tenant_order_.empty() ? 0 : slot % tenant_order_.size();
      } else {
        rr_cursor_ = (slot + 1) % tenants;
      }
      return id;
    }
  }
  return std::nullopt;
}

CaseState EnactmentEngine::status(CaseId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  return it == records_.end() ? CaseState::Rejected : it->second.state;
}

std::optional<CaseOutcome> EnactmentEngine::result(CaseId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  if (it == records_.end() || !is_terminal(it->second.state)) return std::nullopt;
  return it->second.outcome;
}

bool EnactmentEngine::cancel(CaseId id) {
  bool journaled = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = records_.find(id);
    if (it == records_.end()) return false;
    CaseRecord& record = it->second;
    if (is_terminal(record.state)) return false;
    record.cancel_requested = true;
    if (journal_) {
      std::string payload;
      store::Writer w(payload);
      w.u8(kEventCancel);
      w.u64(id);
      journaled = journal_append_locked(payload);
    }
    if (record.state == CaseState::Queued) {
      // Remove from its tenant queue and terminate immediately.
      auto queue_it = tenant_queues_.find(record.tenant);
      if (queue_it != tenant_queues_.end()) {
        auto& queue = queue_it->second;
        auto pos = std::find(queue.begin(), queue.end(), id);
        if (pos != queue.end()) {
          queue.erase(pos);
          --queued_;
        }
        if (queue.empty()) {
          tenant_queues_.erase(queue_it);
          auto order = std::find(tenant_order_.begin(), tenant_order_.end(), record.tenant);
          if (order != tenant_order_.end()) tenant_order_.erase(order);
          rr_cursor_ = tenant_order_.empty() ? 0 : rr_cursor_ % tenant_order_.size();
        }
      }
      record.state = CaseState::Cancelled;
      record.outcome.state = CaseState::Cancelled;
      record.outcome.error = "cancelled while queued";
      record.outcome.engine_retries = record.retries_used;
      record.outcome.completion_index = ++completion_sequence_;
      record.outcome.latency_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - record.submitted_at)
              .count();
      latency_hist_->observe(record.outcome.latency_seconds);
      ++cancelled_total_;
      if (journal_) {
        std::string payload;
        store::Writer w(payload);
        w.u8(kEventTerminal);
        w.u64(id);
        write_outcome(w, record.outcome);
        journal_append_locked(payload);
      }
      case_terminal_.notify_all();
    }
    // A Running case is abandoned by its shard at the next slice boundary.
  }
  if (journaled) journal_commit();
  return true;
}

bool EnactmentEngine::cancel_requested(CaseId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  return it == records_.end() || it->second.cancel_requested;
}

std::optional<CaseOutcome> EnactmentEngine::wait(CaseId id) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = records_.find(id);
  if (it == records_.end()) return std::nullopt;
  case_terminal_.wait(lock, [&] { return stopping_ || is_terminal(it->second.state); });
  if (!is_terminal(it->second.state)) return std::nullopt;
  return it->second.outcome;
}

void EnactmentEngine::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  case_terminal_.wait(lock, [&] { return stopping_ || (queued_ == 0 && running_ == 0); });
}

EngineMetrics EnactmentEngine::metrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  EngineMetrics snapshot;
  snapshot.submitted = submitted_total_;
  snapshot.rejected = rejected_total_;
  snapshot.completed = completed_total_;
  snapshot.failed = failed_total_;
  snapshot.cancelled = cancelled_total_;
  snapshot.retried = retried_total_;
  snapshot.recovered = recovered_total_;
  snapshot.store_io_errors = store_io_errors_;
  snapshot.degraded = degraded_;
  snapshot.queue_depth = queued_;
  snapshot.running = running_;
  const sched::JobStats job_stats = jobs_->stats();
  snapshot.jobs_executed = job_stats.executed;
  snapshot.jobs_stolen = job_stats.stolen;
  snapshot.steal_attempts = job_stats.steal_attempts;
  snapshot.steal_rate = job_stats.steal_rate();
  const obs::HistogramSnapshot hist = latency_hist_->snapshot();
  if (hist.count > 0) {
    const std::vector<double> qs = hist.quantiles({50.0, 90.0, 99.0});
    snapshot.latency_p50 = qs[0];
    snapshot.latency_p90 = qs[1];
    snapshot.latency_p99 = qs[2];
  }
  snapshot.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_at_).count();
  if (snapshot.uptime_seconds > 0.0)
    snapshot.completed_per_second =
        static_cast<double>(completed_total_) / snapshot.uptime_seconds;
  snapshot.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardMetrics sm;
    sm.cases_run = shard->cases_run;
    sm.cases_completed = shard->cases_completed;
    sm.cases_failed = shard->cases_failed;
    // These counters are all atomic on their owners (platform, request
    // trackers, monitoring), so reading them here while the shard's worker
    // is mid-enactment is safe.
    svc::Environment& environment = *shard->environment;
    sm.handler_failures =
        shard->acc_handler_failures + environment.platform().handler_failures_total();
    sm.faults_injected =
        shard->acc_faults_injected + environment.platform().chaos_stats().total_injected();
    sm.request_retries = shard->acc_request_retries +
                         environment.coordination().tracker().retries_total() +
                         environment.planning().tracker().retries_total();
    sm.dead_letters = shard->acc_dead_letters +
                      environment.coordination().tracker().dead_letters_total() +
                      environment.planning().tracker().dead_letters_total();
    sm.containers_recovered =
        shard->acc_containers_recovered + environment.monitoring().containers_recovered();
    sm.trace_dropped = shard->acc_trace_dropped + environment.platform().trace_dropped();
    snapshot.handler_failures += sm.handler_failures;
    snapshot.faults_injected += sm.faults_injected;
    snapshot.request_retries += sm.request_retries;
    snapshot.dead_letters += sm.dead_letters;
    snapshot.containers_recovered += sm.containers_recovered;
    sm.busy_seconds = shard->busy_seconds;
    sm.utilization =
        snapshot.uptime_seconds > 0.0 ? shard->busy_seconds / snapshot.uptime_seconds : 0.0;
    // The registry view of the same shard, labelled so a scrape can tell
    // shards apart while the EngineMetrics struct keeps its vector form.
    environment.publish_metrics(registry_,
                                {{"shard", std::to_string(shard->index)}});
    snapshot.shards.push_back(sm);
  }
  registry_.counter("engine_cases_submitted_total").set_to(snapshot.submitted);
  registry_.counter("engine_cases_rejected_total").set_to(snapshot.rejected);
  registry_.counter("engine_cases_completed_total").set_to(snapshot.completed);
  registry_.counter("engine_cases_failed_total").set_to(snapshot.failed);
  registry_.counter("engine_cases_cancelled_total").set_to(snapshot.cancelled);
  registry_.counter("engine_case_retries_total").set_to(snapshot.retried);
  registry_.counter("engine_cases_recovered_total").set_to(snapshot.recovered);
  registry_.gauge("engine_queue_depth").set(static_cast<double>(snapshot.queue_depth));
  registry_.gauge("engine_cases_running").set(static_cast<double>(snapshot.running));
  registry_.gauge("engine_uptime_seconds").set(snapshot.uptime_seconds);
  registry_.gauge("engine_completed_per_second").set(snapshot.completed_per_second);
  registry_.counter("store_io_errors_total").set_to(snapshot.store_io_errors);
  registry_.gauge("engine_degraded").set(snapshot.degraded ? 1.0 : 0.0);
  jobs_->publish_metrics(registry_);
  if (journal_) journal_->publish_metrics(registry_, {{"component", "engine-journal"}});
  return snapshot;
}

std::vector<obs::Span> EnactmentEngine::shard_spans(std::size_t shard_index) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard_index >= shards_.size()) return {};
  return shards_[shard_index]->environment->tracer().spans();
}

void EnactmentEngine::pump(Shard& shard) {
  util::Stopwatch slice_clock;
  const bool again = step(shard);
  const double busy = slice_clock.elapsed_seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shard.busy_seconds += busy;
  }
  // Repost while the stream has work. The repost happens *after* the step,
  // so at most one pump job per shard is ever queued or running; when the
  // stream goes idle, step() already cleared pump_scheduled under the mutex.
  if (again) post_pump(shard);
}

bool EnactmentEngine::step(Shard& shard) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      if (shard.phase != Shard::Phase::Idle) {
        // Abandon the in-flight attempt (a Checkpoint phase is already a
        // failed attempt; Drain/Enact become failures now). No Terminal is
        // journaled: a durable engine's cold start must resume the case.
        auto it = records_.find(shard.snapshot.id);
        if (it != records_.end()) {
          finalize_locked(it->second, shard, CaseState::Failed, shard.attempt.reply,
                          /*journal_terminal=*/false);
          it->second.outcome.error = "engine shutdown";
        }
        --running_;
        shard.phase = Shard::Phase::Idle;
      }
      shard.pump_scheduled = false;
      return false;
    }
  }

  svc::Environment& environment = *shard.environment;
  grid::Simulation& sim = environment.sim();

  switch (shard.phase) {
    case Shard::Phase::Idle: {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        // Popping the queue and clearing pump_scheduled happen in the same
        // critical section, so a submit either sees the flag and skips the
        // post, or sees it cleared and reschedules — never a lost wakeup.
        std::optional<CaseId> popped = pop_for_shard_locked(shard.index);
        if (!popped.has_value()) {
          shard.pump_scheduled = false;
          return false;
        }
        CaseRecord& record = records_.at(*popped);
        record.state = CaseState::Running;
        record.outcome.shard = shard.index;
        ++running_;
        ++shard.cases_run;
        shard.snapshot = record;  // inputs the attempt needs, copied out of the lock
        shard.conversation = "engine/" + std::to_string(record.id) + "/" +
                             std::to_string(record.retries_used);
        shard.slices = 0;
        shard.attempt = AttemptResult{};
        shard.phase = Shard::Phase::Drain;
      }
      // Durable mode: the attempt runs on a stack derived purely from
      // (case id, retries) — rebuilt fresh, outside the engine mutex, so
      // a crash-resumed attempt re-executes bit-identically no matter
      // which shard hosts it or what ran on the shard before.
      if (journal_) refresh_shard_environment(shard);
      return true;
    }

    case Shard::Phase::Drain: {
      // Flush anything a previous (possibly abandoned) case left on the
      // calendar before the fresh attempt starts.
      if (sim.run(config_.events_per_slice) == 0 ||
          ++shard.slices >= config_.max_slices_per_case) {
        begin_enact(shard);
      }
      return true;
    }

    case Shard::Phase::Enact: {
      if (cancel_requested(shard.snapshot.id)) {
        shard.attempt.kind = AttemptResult::Kind::Cancelled;
        return complete_attempt(shard);
      }
      const std::size_t executed = sim.run(config_.events_per_slice);
      std::optional<AclMessage> reply = shard.client->take(shard.conversation);
      if (!reply.has_value()) {
        if (executed == 0 || ++shard.slices >= config_.max_slices_per_case) {
          // Calendar drained (or budget blown) without an answer: stalled.
          shard.attempt.kind = AttemptResult::Kind::Failure;
          shard.attempt.reply.params["error"] = "enactment stalled (no completion reply)";
          return complete_attempt(shard);
        }
        return true;
      }
      shard.attempt.reply = *reply;
      const bool success = reply->performative == Performative::Inform &&
                           reply->param_bool("success", true);
      if (success) {
        shard.attempt.kind = AttemptResult::Kind::Success;
        return complete_attempt(shard);
      }
      shard.attempt.kind = AttemptResult::Kind::Failure;
      // Snapshot the failed enactment so a retry on another shard replays
      // the work that did complete. The reply names the coordinator's local
      // case id; submissions rejected before an enactment existed (e.g.
      // invalid XML) carry none, and then the retry resubmits from scratch.
      const std::string local_case = reply->param("case");
      if (local_case.empty() || shard.snapshot.retries_used >= config_.max_case_retries)
        return complete_attempt(shard);
      AclMessage checkpoint;
      checkpoint.performative = Performative::Request;
      checkpoint.receiver = svc::names::kCoordination;
      checkpoint.protocol = svc::protocols::kCheckpointCase;
      checkpoint.conversation_id = shard.conversation + "/checkpoint";
      checkpoint.params["case"] = local_case;
      shard.client->post(std::move(checkpoint));
      shard.phase = Shard::Phase::Checkpoint;
      shard.slices = 0;
      return true;
    }

    case Shard::Phase::Checkpoint: {
      const std::size_t executed = sim.run(config_.events_per_slice);
      auto snapshot_reply = shard.client->take(shard.conversation + "/checkpoint");
      if (snapshot_reply.has_value()) {
        if (snapshot_reply->performative == Performative::Inform)
          shard.attempt.checkpoint_xml = snapshot_reply->content;
        return complete_attempt(shard);
      }
      if (executed == 0 || ++shard.slices >= config_.max_slices_per_case)
        return complete_attempt(shard);
      return true;
    }
  }
  return false;  // unreachable
}

void EnactmentEngine::begin_enact(Shard& shard) {
  svc::Environment& environment = *shard.environment;
  // Drain done: give this case a fresh kernel state.
  environment.kernels().reset();

  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = svc::names::kCoordination;
  request.conversation_id = shard.conversation;
  if (shard.snapshot.checkpoint_xml.empty()) {
    request.protocol = svc::protocols::kEnactCase;
    request.content = shard.snapshot.process_xml;
    request.params["case-xml"] = shard.snapshot.case_xml;
  } else {
    // Retry from the failed attempt's snapshot: completed activities replay,
    // and the new shard gets a full re-planning budget again.
    request.protocol = svc::protocols::kRestoreCase;
    request.content = shard.snapshot.checkpoint_xml;
    request.params["reset-replans"] = "true";
  }
  shard.client->post(std::move(request));
  shard.phase = Shard::Phase::Enact;
  shard.slices = 0;
}

bool EnactmentEngine::complete_attempt(Shard& shard) {
  AttemptResult attempt = std::move(shard.attempt);
  shard.attempt = AttemptResult{};
  shard.phase = Shard::Phase::Idle;

  std::vector<Shard*> to_pump;
  bool again = true;
  bool journaled = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    --running_;
    auto it = records_.find(shard.snapshot.id);
    if (it != records_.end()) {
      CaseRecord& record = it->second;
      journaled = journal_ != nullptr;
      if (stopping_ && attempt.kind != AttemptResult::Kind::Success) {
        // Abandoned by shutdown: no Terminal journaled, restart resumes it.
        finalize_locked(record, shard, CaseState::Failed, attempt.reply,
                        /*journal_terminal=*/false);
        record.outcome.error = "engine shutdown";
        journaled = false;
      } else {
        switch (attempt.kind) {
          case AttemptResult::Kind::Cancelled:
            finalize_locked(record, shard, CaseState::Cancelled, attempt.reply);
            record.outcome.error = "cancelled while running";
            break;
          case AttemptResult::Kind::Success:
            finalize_locked(record, shard, CaseState::Completed, attempt.reply);
            break;
          case AttemptResult::Kind::Failure:
            if (record.retries_used < config_.max_case_retries && !record.cancel_requested) {
              ++record.retries_used;
              ++retried_total_;
              if (!attempt.checkpoint_xml.empty())
                record.checkpoint_xml = std::move(attempt.checkpoint_xml);
              if (shards_.size() > 1) {
                // Prefer a different shard; never strand the case when the
                // exclusion set would cover the whole fleet.
                record.excluded_shards.insert(shard.index);
                if (record.excluded_shards.size() >= shards_.size())
                  record.excluded_shards.clear();
              }
              if (journal_) {
                // The event carries the resulting retry state (absolute),
                // so replay converges even when it overlaps a snapshot.
                std::string payload;
                store::Writer w(payload);
                w.u8(kEventRetry);
                w.u64(record.id);
                w.u32(static_cast<std::uint32_t>(record.retries_used));
                w.str(record.checkpoint_xml);
                w.u64(record.excluded_shards.size());
                for (std::size_t excluded : record.excluded_shards) w.u64(excluded);
                journal_append_locked(payload);
              }
              admit_locked(record);
              // The readmitted case excludes this shard, so another shard's
              // stream must pick it up; this shard keeps pumping via its own
              // repost (its pump_scheduled is still set, so it is skipped).
              to_pump = claim_idle_pumps_locked();
            } else {
              finalize_locked(record, shard, CaseState::Failed, attempt.reply);
            }
            break;
        }
      }
    }
    if (stopping_) {
      shard.pump_scheduled = false;
      again = false;
    }
  }
  if (journaled) {
    // Group-commit barrier off the engine mutex, then a snapshot if the
    // journal accumulated enough records since the last one (the provider
    // re-takes the engine mutex, so this must run here, unlocked).
    if (journal_commit()) journal_->maybe_snapshot();
  }
  for (Shard* other : to_pump) post_pump(*other);
  return again;
}

void EnactmentEngine::finalize_locked(CaseRecord& record, Shard& shard, CaseState state,
                                      const AclMessage& reply, bool journal_terminal) {
  record.state = state;
  CaseOutcome& outcome = record.outcome;
  outcome.state = state;
  outcome.error = reply.param("error");
  outcome.makespan = reply.param_double("makespan", 0.0);
  outcome.activities_executed = reply.param_int("activities-executed", 0);
  outcome.activities_replayed = reply.param_int("activities-replayed", 0);
  outcome.dispatch_failures = reply.param_int("dispatch-failures", 0);
  outcome.replans = reply.param_int("replans", 0);
  outcome.goal_satisfaction = reply.param_double("goal-satisfaction", 0.0);
  outcome.total_cost = reply.param_double("total-cost", 0.0);
  outcome.engine_retries = record.retries_used;
  outcome.shard = shard.index;
  outcome.completion_index = ++completion_sequence_;
  outcome.latency_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - record.submitted_at)
          .count();
  latency_hist_->observe(outcome.latency_seconds);
  switch (state) {
    case CaseState::Completed:
      ++completed_total_;
      ++shard.cases_completed;
      break;
    case CaseState::Cancelled:
      ++cancelled_total_;
      break;
    default:
      ++failed_total_;
      ++shard.cases_failed;
      break;
  }
  if (journal_ && journal_terminal) {
    std::string payload;
    store::Writer w(payload);
    w.u8(kEventTerminal);
    w.u64(record.id);
    write_outcome(w, outcome);
    journal_append_locked(payload);
  }
  IG_LOG_DEBUG("engine") << "case " << record.id << " -> " << to_string(state)
                         << " on shard " << shard.index;
  case_terminal_.notify_all();
}

void EnactmentEngine::degrade_locked(const std::string& reason) {
  ++store_io_errors_;
  if (degraded_) return;
  degraded_ = true;
  degraded_reason_ = reason;
  IG_LOG_WARN("engine") << "journal failure — degrading: running cases finish "
                           "in memory, new durable admissions are rejected ("
                        << reason << ")";
}

bool EnactmentEngine::journal_append_locked(std::string_view payload) {
  try {
    journal_->append_event("engine", payload);
    return true;
  } catch (const store::Error& e) {
    degrade_locked(e.what());
    return false;
  }
}

bool EnactmentEngine::journal_commit() {
  try {
    journal_->commit();
    return true;
  } catch (const store::Error& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    degrade_locked(e.what());
    return false;
  }
}

// -- durable mode ----------------------------------------------------------------

void EnactmentEngine::recover_from_journal() {
  // The storage engine replays during construction; buffer the events and
  // apply them after the snapshot blob, which they must land on top of.
  std::vector<std::string> replayed;
  journal_ = std::make_unique<store::StorageEngine>(
      config_.storage, [&replayed](std::string_view stream, std::string_view payload) {
        if (stream == "engine") replayed.emplace_back(payload);
      });
  const std::string blob = journal_->recovered_state("engine");
  if (!blob.empty() && !decode_engine_state(blob)) {
    IG_LOG_DEBUG("engine") << "discarding undecodable engine snapshot blob ("
                           << blob.size() << " bytes); rebuilding from the WAL alone";
    records_.clear();
  }
  for (const std::string& payload : replayed) apply_journal_event(payload);

  // Rebuild the queues and aggregate counters the replay implies. Cases
  // that were Queued *or Running* when the process died are re-admitted:
  // a running attempt left no durable partial state, and because its
  // random streams derive only from (case id, retries) it re-executes
  // identically on whatever shard picks it up after the restart.
  submitted_total_ = records_.size();
  for (auto& [id, record] : records_) {
    next_case_id_ = std::max(next_case_id_, id + 1);
    retried_total_ += static_cast<std::size_t>(record.retries_used);
    completion_sequence_ = std::max(completion_sequence_, record.outcome.completion_index);
    switch (record.state) {
      case CaseState::Completed: ++completed_total_; break;
      case CaseState::Cancelled: ++cancelled_total_; break;
      case CaseState::Failed: ++failed_total_; break;
      default: {
        // A restart may run fewer shards than the run that journaled the
        // exclusions; never let a stale set cover the whole fleet.
        if (record.excluded_shards.size() >= config_.shards) record.excluded_shards.clear();
        record.submitted_at = std::chrono::steady_clock::now();
        admit_locked(record);
        ++recovered_total_;
        break;
      }
    }
  }
  if (recovered_total_ > 0) {
    IG_LOG_DEBUG("engine") << "cold start recovered " << records_.size() << " cases, "
                           << recovered_total_ << " resumed";
  }
  journal_->set_state_provider("engine", [this] { return encode_engine_state(); });
}

void EnactmentEngine::apply_journal_event(std::string_view payload) {
  store::Reader r(payload);
  const std::uint8_t type = r.u8();
  const CaseId id = r.u64();
  switch (type) {
    case kEventAdmit: {
      const std::string tenant(r.str());
      std::string process_xml(r.str());
      std::string case_xml(r.str());
      if (!r.ok() || id == kInvalidCase) return;
      CaseRecord& record = records_[id];
      if (record.id != kInvalidCase) return;  // already known via the snapshot blob
      record.id = id;
      record.tenant = tenant;
      record.process_xml = std::move(process_xml);
      record.case_xml = std::move(case_xml);
      record.state = CaseState::Queued;
      return;
    }
    case kEventRetry: {
      const std::uint32_t retries = r.u32();
      std::string checkpoint_xml(r.str());
      const std::uint64_t excluded_count = r.u64();
      std::set<std::size_t> excluded;
      for (std::uint64_t i = 0; i < excluded_count && r.ok(); ++i)
        excluded.insert(static_cast<std::size_t>(r.u64()));
      auto it = records_.find(id);
      if (!r.ok() || it == records_.end()) return;
      CaseRecord& record = it->second;
      if (is_terminal(record.state)) return;  // stale overlap of a finished case
      record.retries_used = static_cast<int>(retries);
      record.checkpoint_xml = std::move(checkpoint_xml);
      record.excluded_shards = std::move(excluded);
      record.state = CaseState::Queued;
      return;
    }
    case kEventCancel: {
      auto it = records_.find(id);
      if (!r.ok() || it == records_.end()) return;
      it->second.cancel_requested = true;
      return;
    }
    case kEventTerminal: {
      const CaseOutcome outcome = read_outcome(r);
      auto it = records_.find(id);
      if (!r.ok() || it == records_.end()) return;
      if (!is_terminal(outcome.state)) return;  // corrupt state byte
      it->second.state = outcome.state;
      it->second.outcome = outcome;
      return;
    }
    default:
      IG_LOG_DEBUG("engine") << "skipping unknown journal event type "
                             << static_cast<int>(type);
      return;
  }
}

std::string EnactmentEngine::encode_engine_state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  store::Writer w(out);
  w.u32(kStateBlobVersion);
  w.u64(next_case_id_);
  w.u64(completion_sequence_);
  w.u64(records_.size());
  for (const auto& [id, record] : records_) {
    w.u64(id);
    w.str(record.tenant);
    w.str(record.process_xml);
    w.str(record.case_xml);
    w.str(record.checkpoint_xml);
    w.u8(static_cast<std::uint8_t>(record.state));
    w.u8(record.cancel_requested ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(record.retries_used));
    w.u64(record.excluded_shards.size());
    for (std::size_t excluded : record.excluded_shards) w.u64(excluded);
    write_outcome(w, record.outcome);
  }
  return out;
}

bool EnactmentEngine::decode_engine_state(std::string_view blob) {
  store::Reader r(blob);
  if (r.u32() != kStateBlobVersion) return false;
  const std::uint64_t next_id = r.u64();
  const std::uint64_t completion_sequence = r.u64();
  const std::uint64_t count = r.u64();
  std::map<CaseId, CaseRecord> records;
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    CaseRecord record;
    record.id = r.u64();
    record.tenant = std::string(r.str());
    record.process_xml = std::string(r.str());
    record.case_xml = std::string(r.str());
    record.checkpoint_xml = std::string(r.str());
    const std::uint8_t state = r.u8();
    record.cancel_requested = r.u8() != 0;
    record.retries_used = static_cast<int>(r.u32());
    const std::uint64_t excluded_count = r.u64();
    for (std::uint64_t k = 0; k < excluded_count && r.ok(); ++k)
      record.excluded_shards.insert(static_cast<std::size_t>(r.u64()));
    record.outcome = read_outcome(r);
    if (!r.ok() || record.id == kInvalidCase ||
        state > static_cast<std::uint8_t>(CaseState::Rejected)) {
      return false;
    }
    record.state = static_cast<CaseState>(state);
    const CaseId record_id = record.id;
    records.emplace(record_id, std::move(record));
  }
  if (!r.ok() || !r.done()) return false;
  records_ = std::move(records);
  next_case_id_ = std::max<CaseId>(1, next_id);
  completion_sequence_ = static_cast<std::size_t>(completion_sequence);
  return true;
}

void EnactmentEngine::refresh_shard_environment(Shard& shard) {
  const double floor = shard.index < config_.shard_failure_floor.size()
                           ? config_.shard_failure_floor[shard.index]
                           : 0.0;
  svc::EnvironmentOptions options = config_.environment;
  const std::uint64_t retries = static_cast<std::uint64_t>(shard.snapshot.retries_used);
  if (options.chaos.enabled()) {
    options.chaos.seed =
        util::derive_stream(options.chaos.seed, 0xC4A05ULL, shard.snapshot.id, retries);
  }
  // Shard index pinned to 0 in the seed derivation: the attempt's random
  // streams must depend only on (engine seed, case id, retries), or a
  // restarted engine — whose shard assignment can differ — would diverge.
  auto fresh = svc::make_shard_stack(
      options, util::derive_stream(config_.seed, shard.snapshot.id, retries), 0, floor);
  EngineClient* client = &fresh->platform().spawn<EngineClient>("engine-client");
  if (config_.shard_setup) config_.shard_setup(*fresh, shard.index);
  std::unique_ptr<svc::Environment> retiring;
  {
    // Swap under the engine mutex — metrics() and shard_spans() read
    // shard.environment under the same mutex — folding the retiring
    // stack's counters into the shard accumulators first.
    std::lock_guard<std::mutex> lock(mutex_);
    svc::Environment& old_env = *shard.environment;
    shard.acc_handler_failures += old_env.platform().handler_failures_total();
    shard.acc_faults_injected += old_env.platform().chaos_stats().total_injected();
    shard.acc_request_retries += old_env.coordination().tracker().retries_total() +
                                 old_env.planning().tracker().retries_total();
    shard.acc_dead_letters += old_env.coordination().tracker().dead_letters_total() +
                              old_env.planning().tracker().dead_letters_total();
    shard.acc_containers_recovered += old_env.monitoring().containers_recovered();
    shard.acc_trace_dropped += old_env.platform().trace_dropped();
    retiring = std::move(shard.environment);
    shard.environment = std::move(fresh);
    shard.client = client;
  }
  // `retiring` dies here, off the engine mutex (platform teardown is not cheap).
}

}  // namespace ig::engine
