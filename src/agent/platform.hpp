// The agent platform: registration, message transport, and tracing.
//
// Substitutes for Jade. Delivery is asynchronous on the virtual clock: a
// sent message arrives after a latency determined by a pluggable function
// (by default a small constant; the services install a domain-aware function
// backed by the grid's network model). The platform records a trace of every
// delivery, which the Figure 2/3 harnesses print as the paper's message
// flows.
//
// A ChaosPolicy (agent/chaos.hpp) may be installed to inject transport
// faults — drop, delay, duplicate, reorder — and agent faults (crash, hang),
// all drawn deterministically from one seed so chaotic runs reproduce
// bitwise. Crashed and hung agents are *not* deregistered: their objects
// (and any timers they scheduled) stay alive, the transport just refuses to
// carry their messages.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "agent/agent.hpp"
#include "agent/chaos.hpp"
#include "agent/message.hpp"
#include "grid/sim.hpp"

namespace ig::agent {

/// One delivered (or dropped) message, for diagnostics and the flow benches.
struct TraceRecord {
  grid::SimTime sent_at = 0.0;
  grid::SimTime delivered_at = 0.0;
  AclMessage message;
  bool delivered = false;      ///< false when the receiver did not exist
  std::string handler_error;   ///< non-empty when the handler threw on this message
  std::string chaos;           ///< non-empty when a chaos fault touched this message
};

/// Transport-level condition of an agent (see ChaosPolicy's AgentFault).
enum class AgentHealth { Healthy, Crashed, Hung };

/// A transport hook stands in for the physical medium between send() and the
/// chaos layer: it carries the message through a real encode/decode path
/// (e.g. the wire codec's framed byte stream) and returns what arrived, or
/// nullopt if the transport rejected it (writing a reason into *error). The
/// chaos policy then acts on the *decoded* message, so injected faults hit
/// frames that really crossed a codec, not in-memory copies.
using TransportHook =
    std::function<std::optional<AclMessage>(const AclMessage&, std::string* error)>;

class AgentPlatform {
 public:
  explicit AgentPlatform(grid::Simulation& sim) : sim_(sim) {}

  AgentPlatform(const AgentPlatform&) = delete;
  AgentPlatform& operator=(const AgentPlatform&) = delete;

  grid::Simulation& sim() noexcept { return sim_; }

  // -- lifecycle --------------------------------------------------------------
  /// Registers an agent; its name must be unique. `on_start` runs
  /// immediately. Returns a reference to the stored agent.
  Agent& register_agent(std::unique_ptr<Agent> agent);

  /// Convenience: constructs and registers an agent of type T.
  template <typename T, typename... Args>
  T& spawn(Args&&... args) {
    auto agent = std::make_unique<T>(std::forward<Args>(args)...);
    T& reference = *agent;
    register_agent(std::move(agent));
    return reference;
  }

  /// Deregisters (kills) an agent; queued deliveries to it are dropped.
  bool deregister_agent(std::string_view name);

  Agent* find_agent(std::string_view name) noexcept;
  bool has_agent(std::string_view name) const noexcept;
  std::vector<std::string> agent_names() const;

  // -- messaging ---------------------------------------------------------------
  /// Queues a message for delivery after the transport latency. Messages to
  /// unknown agents bounce: the sender receives a platform FAILURE reply.
  void send(AclMessage message);

  /// Transport latency function (sender, receiver) -> seconds.
  void set_latency_function(std::function<grid::SimTime(const std::string&, const std::string&)> fn) {
    latency_fn_ = std::move(fn);
  }

  /// Installs (or clears, with nullptr) the transport hook. Runs in send()
  /// after the sender-health check and before any chaos decision.
  void set_transport_hook(TransportHook hook) { transport_hook_ = std::move(hook); }
  /// Messages the transport hook rejected (decode errors). Atomic, readable
  /// from a metrics thread.
  std::size_t transport_rejects() const noexcept {
    return transport_rejects_.load(std::memory_order_relaxed);
  }

  /// Atomic, so an engine metrics snapshot may read them from another
  /// thread while the shard's worker is delivering.
  std::size_t messages_sent() const noexcept {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  std::size_t messages_delivered() const noexcept {
    return messages_delivered_.load(std::memory_order_relaxed);
  }

  // -- chaos --------------------------------------------------------------------
  /// Installs (or replaces) the fault-injection policy. Counters reset.
  void set_chaos(ChaosPolicy policy);
  void clear_chaos();
  bool chaos_enabled() const noexcept { return chaos_.has_value() && chaos_->enabled(); }
  /// Consistent snapshot of the injected-fault counters. The live counters
  /// are atomic, so an engine metrics pass may call this from another thread
  /// while the shard's worker is running.
  ChaosStats chaos_stats() const;

  /// Marks an agent crashed: deliveries to it bounce like an unknown agent,
  /// sends from it vanish. The object (and its timers) stays alive.
  void crash_agent(const std::string& name);
  /// Marks an agent hung: a black hole — deliveries to it and sends from it
  /// are silently swallowed. Only timeouts can observe this.
  void hang_agent(const std::string& name);
  /// Restores a crashed or hung agent to healthy (circuit-breaker recovery).
  void revive_agent(const std::string& name);
  AgentHealth agent_health(std::string_view name) const;

  // -- containment ---------------------------------------------------------------
  // A handler that throws must not take the platform down with it: deliver()
  // catches the exception, records it here (and in the trace), and converts
  // it into a Failure reply to the sender. Jade behaves the same way — a
  // behaviour that throws kills the behaviour, not the container.
  /// Handler exceptions caught so far for one agent.
  std::size_t handler_failures(std::string_view name) const;
  /// Per-agent breakdown of caught handler exceptions.
  const std::map<std::string, std::size_t>& handler_failures_by_agent() const noexcept {
    return handler_failures_;
  }
  /// Total caught handler exceptions. Atomic so an engine metrics snapshot
  /// may read it from another thread while the shard is running.
  std::size_t handler_failures_total() const noexcept {
    return handler_failures_total_.load(std::memory_order_relaxed);
  }

  // -- tracing ------------------------------------------------------------------
  void set_tracing(bool enabled) noexcept { tracing_ = enabled; }
  const std::deque<TraceRecord>& trace() const noexcept { return trace_; }
  void clear_trace() { trace_.clear(); }
  /// Caps the trace at the most recent `limit` records (ring buffer); the
  /// oldest record is dropped on overflow. 0 (the default) keeps everything,
  /// which the Figure 2/3 harnesses rely on; long-running shards set a cap
  /// so a traced platform cannot grow without bound.
  void set_trace_limit(std::size_t limit);
  /// The limit and drop counters are atomic: the trace ring itself is only
  /// mutated on the owning sim thread, but these two are read by engine
  /// metrics snapshots from other threads (see engine_test's TSan case).
  std::size_t trace_limit() const noexcept {
    return trace_limit_.load(std::memory_order_relaxed);
  }
  /// Records discarded so far due to the cap.
  std::size_t trace_dropped() const noexcept {
    return trace_dropped_.load(std::memory_order_relaxed);
  }
  /// Multi-line "t=0.001 REQUEST cs -> ps [planning-request]" rendering.
  std::string trace_to_string() const;

  // -- metrics ------------------------------------------------------------------
  /// Pushes the platform's counters (messages, handler failures, trace
  /// drops, chaos faults) into `registry` under `labels`. Reads only atomic
  /// state, so it is safe from a metrics thread while the sim runs.
  void publish_metrics(obs::MetricsRegistry& registry, const obs::Labels& labels = {}) const;

 private:
  void deliver(AclMessage message, grid::SimTime sent_at);
  void note_handler_failure(const AclMessage& message, const std::string& what);
  void push_trace(TraceRecord record);
  /// Trace a message the chaos layer consumed before/at delivery.
  void trace_chaos_loss(const AclMessage& message, grid::SimTime sent_at,
                        const std::string& note);
  /// Fires any agent fault armed for this delivery attempt to `receiver`.
  void apply_agent_faults(const std::string& receiver);

  grid::Simulation& sim_;
  std::vector<std::unique_ptr<Agent>> agents_;
  std::function<grid::SimTime(const std::string&, const std::string&)> latency_fn_;
  TransportHook transport_hook_;
  std::atomic<std::size_t> transport_rejects_{0};
  bool tracing_ = false;
  std::deque<TraceRecord> trace_;
  std::atomic<std::size_t> trace_limit_{0};  ///< 0 = unlimited
  std::atomic<std::size_t> trace_dropped_{0};
  std::atomic<std::size_t> messages_sent_{0};
  std::atomic<std::size_t> messages_delivered_{0};
  std::map<std::string, std::size_t> handler_failures_;
  std::atomic<std::size_t> handler_failures_total_{0};

  std::optional<ChaosPolicy> chaos_;
  std::map<std::string, AgentHealth> health_;
  std::map<std::string, std::size_t> deliveries_by_agent_;
  std::atomic<std::size_t> chaos_dropped_{0};
  std::atomic<std::size_t> chaos_delayed_{0};
  std::atomic<std::size_t> chaos_duplicated_{0};
  std::atomic<std::size_t> chaos_reordered_{0};
  std::atomic<std::size_t> chaos_crashed_{0};
  std::atomic<std::size_t> chaos_hung_{0};
  std::atomic<std::size_t> chaos_swallowed_{0};
};

}  // namespace ig::agent
