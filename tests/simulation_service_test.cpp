// Tests for the simulation service's two dry-run protocols and assorted
// service edge cases that the main services suite does not cover.
#include <gtest/gtest.h>

#include "services/environment.hpp"
#include "services/protocol.hpp"
#include "virolab/catalogue.hpp"
#include "virolab/workflow.hpp"
#include "wfl/structure.hpp"
#include "wfl/xml_io.hpp"

namespace ig::svc {
namespace {

using agent::AclMessage;
using agent::Performative;

class Client : public agent::Agent {
 public:
  explicit Client(std::string name = "ui") : Agent(std::move(name)) {}
  void handle_message(const AclMessage& message) override { replies.push_back(message); }
  void request(agent::AgentPlatform& platform, AclMessage message) {
    message.sender = name();
    platform.send(std::move(message));
  }
  std::vector<AclMessage> replies;
};

struct Fixture {
  Fixture() {
    EnvironmentOptions options;
    options.topology.domains = 1;
    options.topology.nodes_per_domain = 2;
    options.seed = 3;
    environment = make_environment(options);
    client = &environment->platform().spawn<Client>("ui");
  }
  AclMessage last() const {
    return client->replies.empty() ? AclMessage{} : client->replies.back();
  }
  std::unique_ptr<Environment> environment;
  Client* client = nullptr;
};

TEST(SimulateCase, DryRunsTheFigure10Workflow) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kSimulation;
  request.protocol = protocols::kSimulateCase;
  request.content = wfl::process_to_xml_string(virolab::make_fig10_process());
  request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();

  const AclMessage reply = fixture.last();
  ASSERT_EQ(reply.performative, Performative::Inform) << reply.param("error");
  EXPECT_EQ(reply.param("success"), "true");
  EXPECT_EQ(reply.param("goal-satisfaction"), "1");
  // Declarative outputs carry no resolution Value, so the loop runs once:
  // 7 end-user executions.
  EXPECT_EQ(reply.param("activities-executed"), "7");
  const wfl::DataSet predicted = wfl::dataset_from_xml_string(reply.content);
  EXPECT_FALSE(predicted.with_classification("Resolution File").empty());
}

TEST(SimulateCase, ReportsFailureForUnreachableGoal) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kSimulation;
  request.protocol = protocols::kSimulateCase;
  request.content = wfl::process_to_xml_string(
      wfl::lower_to_process(wfl::parse_flow("BEGIN, POD, END"), "short"));
  request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  const AclMessage reply = fixture.last();
  ASSERT_EQ(reply.performative, Performative::Inform);
  EXPECT_EQ(reply.param("success"), "false");
  EXPECT_EQ(reply.param("goal-satisfaction"), "0");
}

TEST(SimulateCase, BadPayloadFails) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kSimulation;
  request.protocol = protocols::kSimulateCase;
  request.content = "not xml at all";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Failure);
}

TEST(SimulatePlan, CountsSimulations) {
  Fixture fixture;
  auto& simulation = fixture.environment->simulation();
  const std::size_t before = simulation.simulations_run();
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kSimulation;
  request.protocol = protocols::kSimulatePlan;
  request.content = wfl::process_to_xml_string(virolab::make_fig10_process());
  request.params["case-xml"] = wfl::case_to_xml_string(virolab::make_case_description());
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  EXPECT_EQ(simulation.simulations_run(), before + 1);
  EXPECT_EQ(fixture.last().param("goal-fitness"), "1");
}

TEST(ServiceEdgeCases, OntologyShellUnknownNameFails) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::QueryRef;
  request.receiver = names::kOntology;
  request.protocol = protocols::kGetShell;
  request.params["name"] = "nope";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::Failure);
}

TEST(ServiceEdgeCases, UnknownProtocolOnRequestBounces) {
  Fixture fixture;
  AclMessage request;
  request.performative = Performative::Request;
  request.receiver = names::kBrokerage;
  request.protocol = "make-coffee";
  fixture.client->request(fixture.environment->platform(), request);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().performative, Performative::NotUnderstood);
}

TEST(ServiceEdgeCases, StrayInformDoesNotBounceBack) {
  Fixture fixture;
  AclMessage inform;
  inform.performative = Performative::Inform;
  inform.receiver = names::kBrokerage;
  inform.protocol = "make-coffee";
  fixture.client->request(fixture.environment->platform(), inform);
  fixture.environment->run();
  EXPECT_TRUE(fixture.client->replies.empty());
}

TEST(ServiceEdgeCases, ServiceWithdrawalMakesProbeNegative) {
  Fixture fixture;
  auto& grid = fixture.environment->grid();
  const auto hosts = grid.containers_advertising("POD");
  ASSERT_FALSE(hosts.empty());
  const std::string container_id = hosts.front()->id();
  ASSERT_TRUE(grid.find_container(container_id)->unhost_service("POD"));
  EXPECT_FALSE(grid.find_container(container_id)->unhost_service("POD"));  // idempotent

  AclMessage probe;
  probe.performative = Performative::QueryIf;
  probe.receiver = container_id;
  probe.protocol = protocols::kQueryExecutable;
  probe.params["service"] = "POD";
  fixture.client->request(fixture.environment->platform(), probe);
  fixture.environment->run();
  EXPECT_EQ(fixture.last().param("executable"), "false");
}

TEST(ServiceEdgeCases, PlanningSeedRotationStillDeterministic) {
  // Two identical environments produce identical re-plans even though the
  // planning service rotates seeds across episodes.
  auto run_once = [] {
    EnvironmentOptions options;
    options.topology.domains = 1;
    options.topology.nodes_per_domain = 2;
    options.gp.population_size = 50;
    options.gp.generations = 8;
    options.seed = 5;
    auto environment = make_environment(options);
    auto& client = environment->platform().spawn<Client>("ui");
    AclMessage request;
    request.performative = Performative::Request;
    request.receiver = names::kPlanning;
    request.protocol = protocols::kPlanRequest;
    request.content = wfl::case_to_xml_string(virolab::make_case_description());
    client.request(environment->platform(), request);
    environment->run();
    return client.replies.empty() ? std::string() : client.replies.back().content;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ig::svc
