// XML interchange for ontologies (schema + instances).
//
// The ontology service distributes shells and populated ontologies as XML
// documents; this module defines that format:
//
//   <ontology name="...">
//     <class name="..." parent="...">
//       <documentation>...</documentation>
//       <slot name="..." type="string|number|boolean|list" required="true"
//             allowed="a|b|c"/>
//     </class>
//     <instance id="..." class="...">
//       <slot name="..."><value type="...">...</value></slot>
//     </instance>
//   </ontology>
#pragma once

#include <string>

#include "meta/ontology.hpp"
#include "xml/xml.hpp"

namespace ig::meta {

/// Serializes an ontology (classes and instances) to an XML document.
xml::Document to_xml(const Ontology& ontology);

/// Serializes a slot value to an XML element named `element_name`.
void value_to_xml(const Value& value, xml::Element& parent, const std::string& element_name);

/// Parses a slot value from an element produced by `value_to_xml`.
Value value_from_xml(const xml::Element& element);

/// Parses an ontology document; throws OntologyError / xml::ParseError.
Ontology from_xml(const xml::Document& document);

/// Round-trip helpers on strings.
std::string to_xml_string(const Ontology& ontology);
Ontology from_xml_string(const std::string& text);

}  // namespace ig::meta
