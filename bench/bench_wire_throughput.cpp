// Binary wire codec vs XML ACL serialization (DESIGN.md §12, EXPERIMENTS A20).
//
// Measures complete round trips — encode, frame/parse, decode, materialize
// into an owning AclMessage — for the two encodings of the same message
// stream, plus the bytes each puts on the wire. The binary column runs the
// real receive path (Stream: peek_frame + zero-copy decode); the XML column
// runs acl_to_xml + acl_from_xml. The tentpole acceptance bar is >= 5x
// msgs/sec for the binary codec.
//
// Appends one JSON Lines record per point to BENCH_wire.json.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "agent/message.hpp"
#include "bench_json.hpp"
#include "util/stopwatch.hpp"
#include "wire/acl_xml.hpp"
#include "wire/channel.hpp"
#include "wire/codec.hpp"

using namespace ig;

namespace {

constexpr const char* kJsonPath = "BENCH_wire.json";

/// A production-chain style message stream: fixed protocol vocabulary
/// (where interning pays), varying conversation ids and payloads.
std::vector<agent::AclMessage> make_stream(std::size_t count) {
  std::vector<agent::AclMessage> messages;
  messages.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    agent::AclMessage message;
    message.performative =
        i % 3 == 0 ? agent::Performative::Request : agent::Performative::Inform;
    message.sender = i % 2 == 0 ? "coordination" : "ac-" + std::to_string(i % 7);
    message.receiver = i % 2 == 0 ? "ac-" + std::to_string(i % 7) : "coordination";
    message.conversation_id = "case-" + std::to_string(i / 8);
    message.protocol = "enactment-request";
    message.ontology = "grid-standard";
    message.content = "<activity name='mc-gen-" + std::to_string(i) + "'/>";
    message.params["activity"] = "mc-gen-" + std::to_string(i % 12);
    message.params["deadline"] = "12.5";
    message.params["attempt"] = std::to_string(i % 3);
    messages.push_back(std::move(message));
  }
  return messages;
}

struct Measurement {
  double msgs_per_second = 0.0;
  std::uint64_t wire_bytes = 0;
  std::size_t round_trips = 0;
};

Measurement run_binary(const std::vector<agent::AclMessage>& messages, std::size_t rounds) {
  Measurement result;
  util::Stopwatch watch;
  for (std::size_t round = 0; round < rounds; ++round) {
    wire::Stream stream;  // fresh intern tables per round: includes warm-up cost
    for (const agent::AclMessage& message : messages) {
      stream.send(message);
      stream.receive([&](const wire::WireMessageView& view) {
        const agent::AclMessage decoded = view.materialize();
        if (decoded.sender.empty() && !message.sender.empty()) std::abort();
        ++result.round_trips;
      });
    }
    result.wire_bytes = stream.encoder_stats().frame_bytes;
  }
  result.msgs_per_second =
      static_cast<double>(result.round_trips) / watch.elapsed_seconds();
  return result;
}

Measurement run_xml(const std::vector<agent::AclMessage>& messages, std::size_t rounds) {
  Measurement result;
  util::Stopwatch watch;
  for (std::size_t round = 0; round < rounds; ++round) {
    std::uint64_t bytes = 0;
    for (const agent::AclMessage& message : messages) {
      const std::string text = wire::acl_to_xml(message);
      bytes += text.size();
      const agent::AclMessage decoded = wire::acl_from_xml(text);
      if (decoded.sender.empty() && !message.sender.empty()) std::abort();
      ++result.round_trips;
    }
    result.wire_bytes = bytes;
  }
  result.msgs_per_second =
      static_cast<double>(result.round_trips) / watch.elapsed_seconds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t scale = 1;
  if (argc > 1) scale = static_cast<std::size_t>(std::strtoull(argv[1], nullptr, 10));
  if (scale == 0) scale = 1;
  const std::size_t kMessages = 2000;
  const std::size_t kRounds = 10 * scale;

  const std::vector<agent::AclMessage> messages = make_stream(kMessages);
  // XML first so the binary run cannot ride a warmed cache it created.
  const Measurement xml = run_xml(messages, kRounds);
  const Measurement binary = run_binary(messages, kRounds);

  const double speedup = binary.msgs_per_second / xml.msgs_per_second;
  const double size_ratio =
      static_cast<double>(xml.wire_bytes) / static_cast<double>(binary.wire_bytes);
  std::printf("ACL round trips (%zu messages x %zu rounds)\n", kMessages, kRounds);
  std::printf("  %-8s %14s %14s\n", "codec", "msgs/s", "bytes/msg");
  std::printf("  %-8s %14.0f %14.1f\n", "xml", xml.msgs_per_second,
              static_cast<double>(xml.wire_bytes) / static_cast<double>(kMessages));
  std::printf("  %-8s %14.0f %14.1f\n", "binary", binary.msgs_per_second,
              static_cast<double>(binary.wire_bytes) / static_cast<double>(kMessages));
  std::printf("speedup %.1fx msgs/s, %.1fx smaller on the wire\n", speedup, size_ratio);

  bench::JsonRecord record("bench_wire_throughput");
  record.add("messages", kMessages);
  record.add("rounds", kRounds);
  record.add("xml_msgs_per_second", xml.msgs_per_second);
  record.add("binary_msgs_per_second", binary.msgs_per_second);
  record.add("xml_bytes_per_msg",
             static_cast<double>(xml.wire_bytes) / static_cast<double>(kMessages));
  record.add("binary_bytes_per_msg",
             static_cast<double>(binary.wire_bytes) / static_cast<double>(kMessages));
  record.add("speedup", speedup);
  record.add("size_ratio", size_ratio);
  record.append_to(kJsonPath);

  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: binary codec is %.1fx, acceptance bar is 5x\n", speedup);
    return 1;
  }
  return 0;
}
