// Minimal XML document model, writer and parser.
//
// Ontologies, process descriptions and case descriptions are archived and
// exchanged between services as XML (the paper's middleware is
// metadata/XML-heavy). This module implements exactly the subset needed for
// that interchange: elements, attributes, character data, comments and an
// XML declaration. It does not implement namespaces, DTDs or entities beyond
// the five predefined ones.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ig::xml {

/// Raised by the parser on malformed input; carries a byte offset.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset)
      : std::runtime_error(message + " (at offset " + std::to_string(offset) + ")"),
        offset_(offset) {}

  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

struct Attribute {
  std::string name;
  std::string value;
};

/// One run of character data inside an element. `position` is the number of
/// child elements preceding the run, so `<a>x<b/>y</a>` yields runs
/// {"x", 0} and {"y", 1} and the writer can reproduce the original order.
struct TextRun {
  std::string text;
  std::size_t position = 0;
};

/// An XML element: tag name, attributes, child elements, and text content.
///
/// Mixed content keeps its document order: each run of character data
/// remembers how many child elements precede it (see TextRun), and the
/// writer interleaves runs and children accordingly. `text()` remains the
/// concatenation of all runs, which is what the record-style documents the
/// services exchange read.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::string& text() const noexcept { return text_; }
  const std::vector<TextRun>& text_runs() const noexcept { return text_runs_; }
  /// Replaces all character data with one run preceding every child.
  void set_text(std::string text) {
    text_ = std::move(text);
    text_runs_.clear();
    if (!text_.empty()) text_runs_.push_back({text_, 0});
  }
  /// Appends a run of character data at the current position (after the
  /// children added so far); consecutive runs at one position merge.
  void append_text(std::string_view text) {
    if (text.empty()) return;
    if (!text_runs_.empty() && text_runs_.back().position == children_.size()) {
      text_runs_.back().text.append(text);
    } else {
      text_runs_.push_back({std::string(text), children_.size()});
    }
    text_.append(text);
  }

  // -- attributes ----------------------------------------------------------
  const std::vector<Attribute>& attributes() const noexcept { return attributes_; }
  void set_attribute(std::string_view name, std::string_view value);
  std::optional<std::string> attribute(std::string_view name) const;
  /// Returns the attribute value or `fallback` when absent.
  std::string attribute_or(std::string_view name, std::string_view fallback) const;
  bool has_attribute(std::string_view name) const;

  // -- children ------------------------------------------------------------
  const std::vector<std::unique_ptr<Element>>& children() const noexcept { return children_; }
  std::vector<std::unique_ptr<Element>>& children_mutable() noexcept { return children_; }
  /// Appends a child element and returns a reference to it.
  Element& add_child(std::string name);
  /// Appends a child with text content; convenience for leaf records.
  Element& add_child_text(std::string name, std::string_view text);
  /// First child with the given tag name, or nullptr.
  const Element* find_child(std::string_view name) const noexcept;
  /// All children with the given tag name.
  std::vector<const Element*> find_children(std::string_view name) const;
  /// Text of the first child with the given name, or empty string.
  std::string child_text(std::string_view name) const;

  /// Serializes this element (and subtree). `indent` < 0 means compact.
  std::string to_string(int indent = 2) const;

 private:
  void write(std::string& out, int indent, int depth) const;

  std::string name_;
  std::string text_;  ///< concatenation of text_runs_
  std::vector<TextRun> text_runs_;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Element>> children_;
};

/// A document is a root element plus the standard declaration.
class Document {
 public:
  explicit Document(std::string root_name) : root_(std::make_unique<Element>(std::move(root_name))) {}
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  Element& root() noexcept { return *root_; }
  const Element& root() const noexcept { return *root_; }

  /// Serializes with an `<?xml version="1.0"?>` declaration.
  std::string to_string(int indent = 2) const;

 private:
  std::unique_ptr<Element> root_;
};

/// Escapes the five predefined entities in character data / attributes.
/// Throws ParseError (offset = position in `text`) on C0 control characters
/// other than tab/LF/CR: XML 1.0 cannot represent them, and the historical
/// pass-through produced documents that parsed back corrupted. Binary
/// payloads belong on the wire codec, not in XML.
std::string escape(std::string_view text);
/// Reverses `escape`. Also decodes numeric character references, decimal
/// (&#10;) and hex (&#x41;), emitting UTF-8; unknown or malformed entities
/// and references to non-XML characters (C0 controls other than 9/10/13,
/// surrogates, > 0x10FFFF) raise ParseError.
std::string unescape(std::string_view text);

/// Parses a document; the input must contain exactly one root element.
Document parse(std::string_view input);

}  // namespace ig::xml
